//! Structural IR verifier.
//!
//! Checks the invariants the passes and the VM rely on:
//! * every block ends with exactly one terminator, and terminators
//!   appear only at block ends;
//! * operand references point at live instructions, existing arguments
//!   and existing globals;
//! * phis appear only at the head of a block, have one incoming entry
//!   per predecessor, and reference actual predecessors;
//! * instruction `block` back-pointers are consistent;
//! * call signatures match their callees.
//!
//! (Full SSA dominance checking is intentionally omitted: the passes
//! only move instructions in dominance-preserving ways, and the
//! interpreter traps on reads of undefined values, which covers the
//! remaining risk in tests.)

use crate::cfg;
use crate::inst::{FuncRef, Inst, InstId};
use crate::module::{FunctionId, Module};
use crate::value::{BlockId, Value};

/// A verifier failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function that failed verification.
    pub func: String,
    /// Description of the violated invariant.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "verify({}): {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function in the module.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for i in 0..m.funcs.len() {
        verify_function(m, FunctionId(i as u32))?;
    }
    Ok(())
}

/// Verifies a single function.
pub fn verify_function(m: &Module, id: FunctionId) -> Result<(), VerifyError> {
    let f = m.func(id);
    let err = |msg: String| {
        Err(VerifyError {
            func: f.name.clone(),
            message: msg,
        })
    };

    if f.blocks.is_empty() {
        return err("function has no blocks".into());
    }

    let preds = cfg::predecessors(f);

    // Collect live instruction ids for operand checking.
    let mut live = vec![false; f.insts.len()];
    for (bi, block) in f.blocks.iter().enumerate() {
        for &iid in &block.insts {
            if iid.0 as usize >= f.insts.len() {
                return err(format!("block {bi} references out-of-range inst {iid:?}"));
            }
            if live[iid.0 as usize] {
                return err(format!("inst {iid:?} appears in more than one position"));
            }
            live[iid.0 as usize] = true;
            if f.insts[iid.0 as usize].block != BlockId(bi as u32) {
                return err(format!(
                    "inst {iid:?} block back-pointer is {:?}, expected block {bi}",
                    f.insts[iid.0 as usize].block
                ));
            }
            if matches!(f.inst(iid), Inst::Removed) {
                return err(format!("removed inst {iid:?} still listed in block {bi}"));
            }
        }
    }

    for (bi, block) in f.blocks.iter().enumerate() {
        // Terminator discipline.
        match block.insts.last() {
            None => return err(format!("block {bi} is empty")),
            Some(&last) if !f.inst(last).is_terminator() => {
                return err(format!("block {bi} does not end in a terminator"))
            }
            _ => {}
        }
        for (pos, &iid) in block.insts.iter().enumerate() {
            let inst = f.inst(iid);
            if inst.is_terminator() && pos + 1 != block.insts.len() {
                return err(format!("terminator {iid:?} not at end of block {bi}"));
            }
            if matches!(inst, Inst::Phi { .. }) {
                // Phis must be at the head (possibly several).
                let all_phis_before = block.insts[..pos]
                    .iter()
                    .all(|&p| matches!(f.inst(p), Inst::Phi { .. }));
                if !all_phis_before {
                    return err(format!("phi {iid:?} is not at the head of block {bi}"));
                }
            }

            // Phi incoming edges match predecessors.
            if let Inst::Phi { incoming, .. } = inst {
                let ps = &preds[bi];
                if incoming.len() != ps.len() {
                    return err(format!(
                        "phi {iid:?} in block {bi} has {} incoming edges, block has {} preds",
                        incoming.len(),
                        ps.len()
                    ));
                }
                for (from, _) in incoming {
                    if !ps.contains(from) {
                        return err(format!(
                            "phi {iid:?} has incoming edge from non-predecessor {from:?}"
                        ));
                    }
                }
            }

            // Branch targets exist.
            match inst {
                Inst::Br { target } if target.0 as usize >= f.blocks.len() => {
                    return err(format!("branch to unknown block {target:?}"));
                }
                Inst::CondBr {
                    then_bb, else_bb, ..
                } if (then_bb.0 as usize >= f.blocks.len()
                    || else_bb.0 as usize >= f.blocks.len()) =>
                {
                    return err("conditional branch to unknown block".into());
                }
                _ => {}
            }

            // Operands reference live defs.
            let mut op_err: Option<String> = None;
            inst.for_each_operand(|v| {
                if op_err.is_some() {
                    return;
                }
                match v {
                    Value::Inst(d) => {
                        if d.0 as usize >= f.insts.len() || !live[d.0 as usize] {
                            op_err = Some(format!("{iid:?} uses dead/unknown inst {d:?}"));
                        } else if f.inst(d).result_ty().is_none() {
                            op_err = Some(format!("{iid:?} uses void inst {d:?} as a value"));
                        }
                    }
                    Value::Arg(a) if a as usize >= f.params.len() => {
                        op_err = Some(format!("{iid:?} uses unknown argument {a}"));
                    }
                    Value::Global(g) if g.0 as usize >= m.globals.len() => {
                        op_err = Some(format!("{iid:?} uses unknown global {g:?}"));
                    }
                    _ => {}
                }
            });
            if let Some(msg) = op_err {
                return err(msg);
            }

            // Call signatures.
            if let Inst::Call {
                callee: FuncRef::Internal(cid),
                args,
                ret,
                kind,
            } = inst
            {
                if cid.0 as usize >= m.funcs.len() {
                    return err(format!("call to unknown function {cid:?}"));
                }
                let callee = m.func(*cid);
                // Parallel/kernel calls get an implicit leading i64 id.
                let implicit = match kind {
                    crate::inst::CallKind::Plain => 0,
                    _ => 1,
                };
                if args.len() + implicit != callee.params.len() {
                    return err(format!(
                        "call to {} passes {} args (+{implicit} implicit), callee takes {}",
                        callee.name,
                        args.len(),
                        callee.params.len()
                    ));
                }
                if *ret != callee.ret {
                    return err(format!(
                        "call to {} return type mismatch ({:?} vs {:?})",
                        callee.name, ret, callee.ret
                    ));
                }
            }
        }
    }

    Ok(())
}

/// Panics (with the error) when verification fails. Convenience for
/// tests and pass pipelines in debug mode.
pub fn assert_valid(m: &Module) {
    if let Err(e) = verify_module(m) {
        panic!("IR verification failed: {e}");
    }
}

/// Returns the list of instruction ids in `f` that mention `needle` as an
/// operand (a helper for tests and pass assertions).
pub fn users_of(m: &Module, id: FunctionId, needle: InstId) -> Vec<InstId> {
    let f = m.func(id);
    f.live_insts()
        .filter(|&i| {
            let mut used = false;
            f.inst(i).for_each_operand(|v| {
                if v == Value::Inst(needle) {
                    used = true;
                }
            });
            used
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Ty;
    use crate::value::Value;

    #[test]
    fn valid_function_passes() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "ok", vec![Ty::Ptr], None);
        let p = b.arg(0);
        let v = b.load(Ty::I64, p);
        b.store(Ty::I64, v, p);
        b.ret(None);
        let id = b.finish();
        assert!(verify_function(&m, id).is_ok());
    }

    #[test]
    fn missing_terminator_detected() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "bad", vec![Ty::Ptr], None);
        let p = b.arg(0);
        b.load(Ty::I64, p);
        let id = b.finish();
        let e = verify_function(&m, id).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn dangling_use_detected() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "bad", vec![Ty::Ptr], None);
        let p = b.arg(0);
        let v = b.load(Ty::I64, p);
        b.store(Ty::I64, v, p);
        b.ret(None);
        let id = b.finish();
        // Remove the load but leave the store using it.
        let f = m.func_mut(id);
        let load = f.blocks[0].insts[0];
        f.remove_inst(load);
        let e = verify_function(&m, id).unwrap_err();
        assert!(e.message.contains("dead"), "{e}");
    }

    #[test]
    fn unknown_argument_detected() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "bad", vec![], None);
        b.store(Ty::I64, Value::ConstInt(0), Value::Arg(3));
        b.ret(None);
        let id = b.finish();
        assert!(verify_function(&m, id).is_err());
    }

    #[test]
    fn phi_pred_mismatch_detected() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "bad", vec![], None);
        let next = b.new_block();
        b.br(next);
        b.switch_to(next);
        // Phi claims two incoming edges but `next` has one predecessor.
        b.phi(
            Ty::I64,
            vec![
                (crate::module::Function::ENTRY, Value::ConstInt(0)),
                (next, Value::ConstInt(1)),
            ],
        );
        b.ret(None);
        let id = b.finish();
        assert!(verify_function(&m, id).is_err());
    }

    #[test]
    fn users_of_finds_uses() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        let p = b.arg(0);
        let v = b.load(Ty::I64, p);
        b.store(Ty::I64, v, p);
        b.ret(None);
        let id = b.finish();
        let load = m.func(id).blocks[0].insts[0];
        let users = users_of(&m, id, load);
        assert_eq!(users.len(), 1);
    }
}
