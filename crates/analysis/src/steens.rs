//! Unification-based (Steensgaard-style) points-to analysis, standing in
//! for LLVM's `CFLSteensAA`. Near-linear time via union-find; coarser
//! than Andersen but much cheaper to compute.

use crate::aa::{AliasAnalysis, QueryCtx};
use crate::constraints::{extract, Constraint, ConstraintSystem};
use crate::location::{AliasResult, MemoryLocation};
use oraql_ir::module::Module;

/// Union-find with pointee ("points-to successor") links.
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    pointee: Vec<Option<u32>>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            pointee: vec![None; n],
        }
    }

    fn fresh(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        self.pointee.push(None);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        // Path halving.
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Pointee class of `x`, creating a fresh one if absent.
    fn pointee_of(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        match self.pointee[r as usize] {
            Some(p) => self.find(p),
            None => {
                let p = self.fresh();
                self.pointee[r as usize] = Some(p);
                p
            }
        }
    }

    /// Joins the classes of `a` and `b`, recursively unifying pointees
    /// (Steensgaard's conditional join).
    fn join(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (win, lose) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        if self.rank[win as usize] == self.rank[lose as usize] {
            self.rank[win as usize] += 1;
        }
        self.parent[lose as usize] = win;
        // Merge pointee links.
        let pw = self.pointee[win as usize];
        let pl = self.pointee[lose as usize];
        match (pw, pl) {
            (Some(x), Some(y)) => self.join(x, y),
            (None, Some(y)) => self.pointee[win as usize] = Some(y),
            _ => {}
        }
    }
}

/// The solved Steensgaard relation plus the AA adapter.
pub struct SteensgaardAA {
    sys: ConstraintSystem,
    uf: UnionFind,
    /// Node id of each abstract object (indexed by `ObjId`).
    obj_nodes: Vec<u32>,
    universal_class_probe: u32,
    answered: u64,
}

impl SteensgaardAA {
    /// Extracts constraints from `m` and unifies them.
    pub fn new(m: &Module) -> Self {
        let sys = extract(m);
        let mut uf = UnionFind::new(sys.num_nodes());
        // One extra node per abstract object.
        let obj_nodes: Vec<u32> = sys.objects.iter().map(|_| uf.fresh()).collect();
        // Wire each object's Andersen-style content node to the object
        // node's pointee, so Load/Store constraints and AddrOf
        // constraints talk about the same thing.
        for (oi, &content) in sys.content_node.iter().enumerate() {
            let p = uf.pointee_of(obj_nodes[oi]);
            uf.join(content, p);
        }
        for c in &sys.constraints {
            match *c {
                Constraint::AddrOf { lhs, obj } => {
                    let p = uf.pointee_of(lhs);
                    uf.join(p, obj_nodes[obj as usize]);
                }
                Constraint::Copy { lhs, rhs } => uf.join(lhs, rhs),
                Constraint::Load { lhs, ptr } => {
                    let p1 = uf.pointee_of(ptr);
                    let p2 = uf.pointee_of(p1);
                    uf.join(lhs, p2);
                }
                Constraint::Store { ptr, rhs } => {
                    let p1 = uf.pointee_of(ptr);
                    let p2 = uf.pointee_of(p1);
                    uf.join(p2, rhs);
                }
            }
        }
        let universal_class_probe = obj_nodes[sys.universal_obj as usize];
        SteensgaardAA {
            sys,
            uf,
            obj_nodes,
            universal_class_probe,
            answered: 0,
        }
    }

    fn node_for(&self, ctx: &QueryCtx<'_>, ptr: oraql_ir::value::Value) -> Option<u32> {
        if let Some(n) = self.sys.node_of(ctx.func, ptr) {
            return Some(n);
        }
        // Pass-created value: fall back to the underlying object's value.
        let f = ctx.module.func(ctx.func);
        let base = crate::pointer::decompose(f, ptr).base;
        let v = match base {
            crate::pointer::PtrBase::Alloca(i)
            | crate::pointer::PtrBase::LoadResult(i)
            | crate::pointer::PtrBase::CallResult(i)
            | crate::pointer::PtrBase::Merge(i) => oraql_ir::value::Value::Inst(i),
            crate::pointer::PtrBase::Arg { index, .. } => oraql_ir::value::Value::Arg(index),
            crate::pointer::PtrBase::Global(g) => oraql_ir::value::Value::Global(g),
            crate::pointer::PtrBase::Unknown => return None,
        };
        self.sys.node_of(ctx.func, v)
    }

    /// Representative of the points-to class of `node`.
    pub fn pointee_class(&mut self, node: u32) -> u32 {
        self.uf.pointee_of(node)
    }

    /// Number of distinct abstract objects (diagnostic).
    pub fn num_objects(&self) -> usize {
        self.obj_nodes.len()
    }
}

impl AliasAnalysis for SteensgaardAA {
    fn name(&self) -> &'static str {
        "SteensgaardAA"
    }

    fn alias(&mut self, ctx: &QueryCtx<'_>, a: &MemoryLocation, b: &MemoryLocation) -> AliasResult {
        let (Some(na), Some(nb)) = (self.node_for(ctx, a.ptr), self.node_for(ctx, b.ptr)) else {
            return AliasResult::MayAlias;
        };
        let pa = self.uf.pointee_of(na);
        let pb = self.uf.pointee_of(nb);
        let pa = self.uf.find(pa);
        let pb = self.uf.find(pb);
        let u = self.uf.find(self.universal_class_probe);
        if pa == pb || pa == u || pb == u {
            return AliasResult::MayAlias;
        }
        self.answered += 1;
        AliasResult::NoAlias
    }

    fn stats(&self) -> Vec<(String, u64)> {
        vec![
            ("answered".into(), self.answered),
            ("objects".into(), self.obj_nodes.len() as u64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::module::FunctionId;
    use oraql_ir::value::Value;
    use oraql_ir::Ty;

    fn ctx(m: &Module) -> QueryCtx<'_> {
        QueryCtx {
            module: m,
            func: FunctionId(0),
            pass: "t",
        }
    }

    #[test]
    fn disjoint_slots_no_alias() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let sx = b.alloca(8, "sx");
        let sy = b.alloca(8, "sy");
        let x = b.alloca(64, "x");
        let y = b.alloca(64, "y");
        b.store(Ty::Ptr, x, sx);
        b.store(Ty::Ptr, y, sy);
        let lx = b.load(Ty::Ptr, sx);
        let ly = b.load(Ty::Ptr, sy);
        b.store(Ty::I64, Value::ConstInt(0), lx);
        b.store(Ty::I64, Value::ConstInt(0), ly);
        b.ret(None);
        b.finish();
        let mut aa = SteensgaardAA::new(&m);
        assert_eq!(
            aa.alias(
                &ctx(&m),
                &MemoryLocation::precise(lx, 8),
                &MemoryLocation::precise(ly, 8)
            ),
            AliasResult::NoAlias
        );
    }

    #[test]
    fn unification_is_coarser_than_andersen() {
        // z = phi(x, y); afterwards Steensgaard has unified x and y's
        // classes, so x vs y becomes MayAlias even though Andersen would
        // still distinguish loads... check the coarsening is observable:
        // x vs w stays NoAlias but x vs y (merged through z) is May.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![Ty::I1], None);
        let x = b.alloca(64, "x");
        let y = b.alloca(64, "y");
        let w = b.alloca(64, "w");
        let z = b.select(Ty::Ptr, b.arg(0), x, y);
        b.store(Ty::I64, Value::ConstInt(0), z);
        b.store(Ty::I64, Value::ConstInt(0), w);
        b.ret(None);
        b.finish();
        let mut aa = SteensgaardAA::new(&m);
        let c = ctx(&m);
        assert_eq!(
            aa.alias(
                &c,
                &MemoryLocation::precise(x, 8),
                &MemoryLocation::precise(y, 8)
            ),
            AliasResult::MayAlias
        );
        assert_eq!(
            aa.alias(
                &c,
                &MemoryLocation::precise(x, 8),
                &MemoryLocation::precise(w, 8)
            ),
            AliasResult::NoAlias
        );
        assert_eq!(
            aa.alias(
                &c,
                &MemoryLocation::precise(z, 8),
                &MemoryLocation::precise(w, 8)
            ),
            AliasResult::NoAlias
        );
    }

    #[test]
    fn universal_flows_poison_queries() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "root", vec![Ty::Ptr], None);
        let x = b.alloca(64, "x");
        b.store(Ty::I64, Value::ConstInt(0), x);
        b.store(Ty::I64, Value::ConstInt(0), b.arg(0));
        b.ret(None);
        b.finish();
        let mut aa = SteensgaardAA::new(&m);
        // Root arg points to universal: may alias even a local alloca?
        // No: an alloca is an identified object a caller cannot pass in.
        // Steensgaard does not know that (BasicAA does); it answers
        // conservatively because arg's class is universal.
        assert_eq!(
            aa.alias(
                &ctx(&m),
                &MemoryLocation::precise(Value::Arg(0), 8),
                &MemoryLocation::precise(x, 8)
            ),
            AliasResult::MayAlias
        );
    }

    #[test]
    fn store_through_pointer_merges_contents() {
        // *s = x; l = *s; l and x must share a class (may alias).
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let s = b.alloca(8, "s");
        let x = b.alloca(64, "x");
        b.store(Ty::Ptr, x, s);
        let l = b.load(Ty::Ptr, s);
        b.store(Ty::I64, Value::ConstInt(0), l);
        b.ret(None);
        b.finish();
        let mut aa = SteensgaardAA::new(&m);
        assert_eq!(
            aa.alias(
                &ctx(&m),
                &MemoryLocation::precise(l, 8),
                &MemoryLocation::precise(x, 8)
            ),
            AliasResult::MayAlias
        );
    }
}
