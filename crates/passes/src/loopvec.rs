//! Innermost-loop vectorizer (VF = 4).
//!
//! Recognizes the canonical counted-loop shape, proves there are no
//! loop-carried memory dependences — the step where alias queries are
//! issued and where optimistic no-alias answers unlock vectorization
//! (the paper's MiniGMG rows: 9 → 12 vectorized loops) — and emits a
//! vector main loop followed by the original scalar loop as remainder.
//!
//! Legality is deliberately strict (consecutive unit-stride accesses,
//! element-wise `i64`/`f64` arithmetic, no reductions): rejecting
//! floating-point reductions keeps transformed programs bit-identical
//! to the scalar version, which the verification harness relies on.

use crate::manager::{Pass, PassCx};
use oraql_analysis::domtree::DomTree;
use oraql_analysis::location::{AliasResult, MemoryLocation};
use oraql_analysis::loops::LoopForest;
use oraql_ir::inst::{BinOp, CastKind, CmpPred, GepOffset, Inst, InstId};
use oraql_ir::module::{Function, FunctionId, Module};
use oraql_ir::types::Ty;
use oraql_ir::value::{BlockId, Value};
use std::collections::HashMap;

/// Vectorization factor.
pub const VF: i64 = 4;

/// The pass.
pub struct LoopVectorize;

impl Pass for LoopVectorize {
    fn name(&self) -> &'static str {
        "loop vectorizer"
    }

    fn run(&mut self, m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) {
        let mut vectorized = 0u64;
        // Vectorizing appends blocks; collect candidates once.
        let dt = DomTree::build(m.func(fid));
        let forest = LoopForest::build(m.func(fid), &dt);
        let candidates: Vec<CanonLoop> = forest
            .loops
            .iter()
            .filter_map(|l| recognize(m.func(fid), &forest, l))
            .collect();
        for canon in candidates {
            if let Some(plan) = legalize(m, fid, cx, &canon) {
                transform(m, fid, &canon, &plan);
                vectorized += 1;
            }
        }
        cx.stat("loop vectorizer", "vectorized loops", vectorized);
    }
}

/// A recognized canonical counted loop:
/// `for (iv = start; iv < end; iv++) body`.
struct CanonLoop {
    pre: BlockId,
    header: BlockId,
    body: BlockId,
    iv_phi: InstId,
    start: Value,
    end: Value,
    next_add: InstId,
}

fn recognize(
    f: &Function,
    forest: &LoopForest,
    l: &oraql_analysis::loops::Loop,
) -> Option<CanonLoop> {
    if l.blocks.len() != 2 || l.latches.len() != 1 {
        return None;
    }
    let header = l.header;
    let body = l.latches[0];
    if !l.blocks.contains(&body) || body == header {
        return None;
    }
    let pre = forest.preheader(f, l)?;
    // Header must be exactly [phi, cmp, condbr].
    let h = &f.blocks[header.0 as usize].insts;
    if h.len() != 3 {
        return None;
    }
    let (iv_phi, cmp_id, br_id) = (h[0], h[1], h[2]);
    let Inst::Phi {
        ty: Ty::I64,
        incoming,
    } = f.inst(iv_phi)
    else {
        return None;
    };
    if incoming.len() != 2 {
        return None;
    }
    let mut start = None;
    let mut next = None;
    for (bb, v) in incoming {
        if *bb == pre {
            start = Some(*v);
        } else if *bb == body {
            next = Some(*v);
        }
    }
    let start = start?;
    let Value::Inst(next_add) = next? else {
        return None;
    };
    let Inst::Cmp {
        pred: CmpPred::Lt,
        ty: Ty::I64,
        lhs,
        rhs,
    } = f.inst(cmp_id)
    else {
        return None;
    };
    if *lhs != Value::Inst(iv_phi) {
        return None;
    }
    let end = *rhs;
    // `end` must be loop-invariant.
    if let Value::Inst(e) = end {
        if l.blocks.contains(&f.block_of(e)) {
            return None;
        }
    }
    let Inst::CondBr {
        cond,
        then_bb,
        else_bb,
    } = f.inst(br_id)
    else {
        return None;
    };
    if *cond != Value::Inst(cmp_id) || *then_bb != body || l.blocks.contains(else_bb) {
        return None;
    }
    // Body ends with a branch back to the header; next_add = iv + 1.
    let b = &f.blocks[body.0 as usize].insts;
    match f.inst(*b.last()?) {
        Inst::Br { target } if *target == header => {}
        _ => return None,
    }
    match f.inst(next_add) {
        Inst::Bin {
            op: BinOp::Add,
            ty: Ty::I64,
            lhs,
            rhs,
        } if (*lhs == Value::Inst(iv_phi) && *rhs == Value::ConstInt(1))
            || (*rhs == Value::Inst(iv_phi) && *lhs == Value::ConstInt(1)) => {}
        _ => return None,
    }
    if f.block_of(next_add) != body {
        return None;
    }
    Some(CanonLoop {
        pre,
        header,
        body,
        iv_phi,
        start,
        end,
        next_add,
    })
}

/// How one body instruction will be vectorized.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Role {
    /// `gep base, iv*scale + add` used only as a unit-stride address.
    AddrGep,
    /// Unit-stride load.
    ConsecLoad,
    /// Unit-stride store.
    ConsecStore,
    /// Element-wise arithmetic.
    Lanewise,
    /// Pure instruction with only loop-invariant operands (cloned as a
    /// scalar and splatted where used).
    Uniform,
    /// Load through a loop-invariant pointer.
    UniformLoad,
    /// The `iv + 1` increment (rebuilt with step VF).
    Increment,
}

struct Plan {
    roles: HashMap<InstId, Role>,
}

/// Is `v` defined outside the loop body/header?
fn invariant(f: &Function, canon: &CanonLoop, v: Value) -> bool {
    match v {
        Value::Inst(i) => {
            let bb = f.block_of(i);
            bb != canon.body && bb != canon.header
        }
        _ => true,
    }
}

/// A unit-stride address: `gep base, iv*scale + add` with invariant base.
fn consec_gep(f: &Function, canon: &CanonLoop, id: InstId) -> Option<(Value, i64, i64)> {
    match f.inst(id) {
        Inst::Gep {
            base,
            offset: GepOffset::Scaled { index, scale, add },
        } if *index == Value::Inst(canon.iv_phi) && invariant(f, canon, *base) => {
            Some((*base, *scale, *add))
        }
        _ => None,
    }
}

fn legalize(m: &Module, fid: FunctionId, cx: &mut PassCx<'_>, canon: &CanonLoop) -> Option<Plan> {
    // Re-borrow the function locally for the pure structural phase.
    let mut roles: HashMap<InstId, Role> = HashMap::new();
    {
        let f = m.func(fid);
        let body = &f.blocks[canon.body.0 as usize].insts;
        for &id in &body[..body.len() - 1] {
            if id == canon.next_add {
                roles.insert(id, Role::Increment);
                continue;
            }
            let inst = f.inst(id);
            let role = if let Some((_, _, _)) = consec_gep(f, canon, id) {
                Role::AddrGep
            } else {
                match inst {
                    Inst::Load { ptr, ty, .. } => {
                        if !ty.vectorizable() {
                            return None;
                        }
                        match ptr {
                            Value::Inst(g) if roles.get(g) == Some(&Role::AddrGep) => {
                                let (_, scale, _) = consec_gep(f, canon, *g)?;
                                if scale != ty.size() as i64 {
                                    return None; // strided
                                }
                                Role::ConsecLoad
                            }
                            p if invariant(f, canon, *p)
                                || matches!(p, Value::Inst(g) if roles.get(g) == Some(&Role::Uniform)) =>
                            {
                                Role::UniformLoad
                            }
                            _ => return None,
                        }
                    }
                    Inst::Store { ptr, value, ty, .. } => {
                        if !ty.vectorizable() {
                            return None;
                        }
                        let Value::Inst(g) = ptr else { return None };
                        if roles.get(g) != Some(&Role::AddrGep) {
                            return None;
                        }
                        let (_, scale, _) = consec_gep(f, canon, *g)?;
                        if scale != ty.size() as i64 {
                            return None;
                        }
                        // Stored value must be lanewise-computable.
                        let ok = match value {
                            v if invariant(f, canon, *v) => true,
                            Value::Inst(d) => matches!(
                                roles.get(d),
                                Some(
                                    Role::ConsecLoad
                                        | Role::Lanewise
                                        | Role::Uniform
                                        | Role::UniformLoad
                                )
                            ),
                            _ => false,
                        };
                        if !ok {
                            return None;
                        }
                        Role::ConsecStore
                    }
                    Inst::Bin { op, ty, lhs, rhs } => {
                        if !ty.vectorizable() || matches!(op, BinOp::Div | BinOp::Rem) {
                            return None;
                        }
                        let operand_ok = |v: &Value| -> bool {
                            if invariant(f, canon, *v) {
                                return true;
                            }
                            match v {
                                Value::Inst(d) => matches!(
                                    roles.get(d),
                                    Some(
                                        Role::ConsecLoad
                                            | Role::Lanewise
                                            | Role::Uniform
                                            | Role::UniformLoad
                                    )
                                ),
                                _ => false,
                            }
                        };
                        if !operand_ok(lhs) || !operand_ok(rhs) {
                            return None;
                        }
                        // Fully-invariant arithmetic is uniform.
                        if invariant(f, canon, *lhs) && invariant(f, canon, *rhs) {
                            Role::Uniform
                        } else {
                            Role::Lanewise
                        }
                    }
                    Inst::Gep { base, offset } => {
                        // Non-iv gep: uniform only when fully invariant.
                        let off_inv = match offset {
                            GepOffset::Const(_) => true,
                            GepOffset::Scaled { index, .. } => invariant(f, canon, *index),
                        };
                        if invariant(f, canon, *base) && off_inv {
                            Role::Uniform
                        } else {
                            return None;
                        }
                    }
                    _ => return None,
                }
            };
            roles.insert(id, role);
        }

        // The IV may only feed addresses, the increment and the compare.
        for uid in f.live_insts() {
            let mut uses_iv = false;
            f.inst(uid).for_each_operand(|v| {
                uses_iv |= v == Value::Inst(canon.iv_phi);
            });
            if !uses_iv {
                continue;
            }
            let allowed = uid == canon.next_add
                || roles.get(&uid) == Some(&Role::AddrGep)
                || f.block_of(uid) == canon.header; // cmp
            if !allowed {
                return None;
            }
        }

        // No body-defined value may be used outside the loop.
        for uid in f.live_insts() {
            let ub = f.block_of(uid);
            if ub == canon.body || ub == canon.header {
                continue;
            }
            let mut bad = false;
            f.inst(uid).for_each_operand(|v| {
                if let Value::Inst(d) = v {
                    bad |= roles.contains_key(&d);
                }
            });
            if bad {
                return None;
            }
        }
    }

    // Dependence phase: issues alias queries.
    let accesses: Vec<(InstId, Role)> = roles
        .iter()
        .filter(|(_, r)| matches!(r, Role::ConsecLoad | Role::ConsecStore | Role::UniformLoad))
        .map(|(&i, &r)| (i, r))
        .collect();
    for &(s, rs) in &accesses {
        if rs != Role::ConsecStore {
            continue;
        }
        for &(a, ra) in &accesses {
            if a == s {
                continue;
            }
            let f = m.func(fid);
            let (sb, ss, sa) = {
                let Inst::Store {
                    ptr: Value::Inst(g),
                    ..
                } = f.inst(s)
                else {
                    unreachable!()
                };
                consec_gep(f, canon, *g).expect("store gep")
            };
            match ra {
                Role::ConsecStore | Role::ConsecLoad => {
                    let gid = match f.inst(a) {
                        Inst::Store {
                            ptr: Value::Inst(g),
                            ..
                        } => *g,
                        Inst::Load {
                            ptr: Value::Inst(g),
                            ..
                        } => *g,
                        _ => unreachable!(),
                    };
                    let (ab, as_, aa) = consec_gep(f, canon, gid).expect("gep");
                    if ab == sb && as_ == ss {
                        // Same array, same stride: only the lane-aligned
                        // case is safe without widening the dependence
                        // window.
                        if sa != aa {
                            return None;
                        }
                    } else {
                        let sloc = MemoryLocation::of_access(f, s).expect("loc");
                        let aloc = MemoryLocation::of_access(f, a).expect("loc");
                        if cx.aa.alias(m, fid, &sloc, &aloc) != AliasResult::NoAlias {
                            return None;
                        }
                    }
                }
                Role::UniformLoad => {
                    let sloc = MemoryLocation::of_access(f, s).expect("loc");
                    let aloc = MemoryLocation::of_access(f, a).expect("loc");
                    if cx.aa.alias(m, fid, &sloc, &aloc) != AliasResult::NoAlias {
                        return None;
                    }
                }
                _ => {}
            }
        }
    }

    Some(Plan { roles })
}

fn transform(m: &mut Module, fid: FunctionId, canon: &CanonLoop, plan: &Plan) {
    let f = m.func_mut(fid);
    // 1. Trip-count math in the preheader.
    let pre = canon.pre;
    let mut at = f.blocks[pre.0 as usize].insts.len() - 1;
    let emit_pre = |f: &mut Function, inst: Inst, at: &mut usize| -> Value {
        let id = f.insert_inst(pre, *at, inst, None);
        *at += 1;
        Value::Inst(id)
    };
    let n = emit_pre(
        f,
        Inst::Bin {
            op: BinOp::Sub,
            ty: Ty::I64,
            lhs: canon.end,
            rhs: canon.start,
        },
        &mut at,
    );
    let q = emit_pre(
        f,
        Inst::Bin {
            op: BinOp::Div,
            ty: Ty::I64,
            lhs: n,
            rhs: Value::ConstInt(VF),
        },
        &mut at,
    );
    let vn = emit_pre(
        f,
        Inst::Bin {
            op: BinOp::Mul,
            ty: Ty::I64,
            lhs: q,
            rhs: Value::ConstInt(VF),
        },
        &mut at,
    );
    let vlimit = emit_pre(
        f,
        Inst::Bin {
            op: BinOp::Add,
            ty: Ty::I64,
            lhs: canon.start,
            rhs: vn,
        },
        &mut at,
    );

    // 2. New blocks.
    let vh = f.add_block();
    let vb = f.add_block();
    let mid = f.add_block();

    // 3. Preheader now enters the vector loop.
    let pt = f.terminator(pre).expect("preheader terminator");
    match f.inst_mut(pt) {
        Inst::Br { target } if *target == canon.header => *target = vh,
        Inst::CondBr {
            then_bb, else_bb, ..
        } => {
            if *then_bb == canon.header {
                *then_bb = vh;
            }
            if *else_bb == canon.header {
                *else_bb = vh;
            }
        }
        other => panic!("unexpected preheader terminator {other:?}"),
    }

    // 4. Vector header.
    let viv = f.push_inst(
        vh,
        Inst::Phi {
            ty: Ty::I64,
            incoming: vec![(pre, canon.start)],
        },
        None,
    );
    let vc = f.push_inst(
        vh,
        Inst::Cmp {
            pred: CmpPred::Lt,
            ty: Ty::I64,
            lhs: Value::Inst(viv),
            rhs: vlimit,
        },
        None,
    );
    f.push_inst(
        vh,
        Inst::CondBr {
            cond: Value::Inst(vc),
            then_bb: vb,
            else_bb: mid,
        },
        None,
    );

    // 5. Vector body: clone lane-wise.
    let body_ids: Vec<InstId> = f.blocks[canon.body.0 as usize].insts.clone();
    let mut vec_map: HashMap<InstId, Value> = HashMap::new(); // vector values
    let mut uni_map: HashMap<InstId, Value> = HashMap::new(); // scalar clones
    let mut splat_cache: HashMap<(Value, Ty), Value> = HashMap::new();

    // Local helper: vectorize an operand (splat invariants/uniforms).
    fn vec_operand(
        f: &mut Function,
        vb: BlockId,
        v: Value,
        scalar_ty: Ty,
        vec_map: &HashMap<InstId, Value>,
        uni_map: &HashMap<InstId, Value>,
        splat_cache: &mut HashMap<(Value, Ty), Value>,
    ) -> Value {
        if let Value::Inst(d) = v {
            if let Some(&vv) = vec_map.get(&d) {
                return vv;
            }
            if let Some(&sv) = uni_map.get(&d) {
                return splat(f, vb, sv, scalar_ty, splat_cache);
            }
        }
        splat(f, vb, v, scalar_ty, splat_cache)
    }
    fn splat(
        f: &mut Function,
        vb: BlockId,
        v: Value,
        scalar_ty: Ty,
        cache: &mut HashMap<(Value, Ty), Value>,
    ) -> Value {
        if let Some(&s) = cache.get(&(v, scalar_ty)) {
            return s;
        }
        let id = f.push_inst(
            vb,
            Inst::Cast {
                kind: CastKind::Splat,
                val: v,
                to: scalar_ty.vec_of(VF as u8),
            },
            None,
        );
        cache.insert((v, scalar_ty), Value::Inst(id));
        Value::Inst(id)
    }
    // Resolve an operand that must stay scalar in the uniform clone.
    fn uni_operand(v: Value, uni_map: &HashMap<InstId, Value>) -> Value {
        match v {
            Value::Inst(d) => uni_map.get(&d).copied().unwrap_or(v),
            _ => v,
        }
    }

    for &id in &body_ids[..body_ids.len() - 1] {
        let Some(&role) = plan.roles.get(&id) else {
            continue;
        };
        let inst = f.inst(id).clone();
        match role {
            Role::AddrGep | Role::Increment => {} // regenerated
            Role::Uniform => {
                let mut cloned = inst.clone();
                cloned.for_each_operand_mut(|v| *v = uni_operand(*v, &uni_map));
                let nid = f.push_inst(vb, cloned, None);
                uni_map.insert(id, Value::Inst(nid));
            }
            Role::UniformLoad => {
                let Inst::Load { ptr, ty, meta } = inst else {
                    unreachable!()
                };
                let nid = f.push_inst(
                    vb,
                    Inst::Load {
                        ptr: uni_operand(ptr, &uni_map),
                        ty,
                        meta,
                    },
                    None,
                );
                uni_map.insert(id, Value::Inst(nid));
            }
            Role::ConsecLoad => {
                let Inst::Load { ptr, ty, meta } = inst else {
                    unreachable!()
                };
                let Value::Inst(g) = ptr else { unreachable!() };
                let Inst::Gep {
                    base,
                    offset: GepOffset::Scaled { scale, add, .. },
                } = *f.inst(g)
                else {
                    unreachable!()
                };
                let ng = f.push_inst(
                    vb,
                    Inst::Gep {
                        base,
                        offset: GepOffset::Scaled {
                            index: Value::Inst(viv),
                            scale,
                            add,
                        },
                    },
                    None,
                );
                let nl = f.push_inst(
                    vb,
                    Inst::Load {
                        ptr: Value::Inst(ng),
                        ty: ty.vec_of(VF as u8),
                        meta,
                    },
                    None,
                );
                vec_map.insert(id, Value::Inst(nl));
            }
            Role::Lanewise => {
                let Inst::Bin { op, ty, lhs, rhs } = inst else {
                    unreachable!()
                };
                let vl = vec_operand(f, vb, lhs, ty, &vec_map, &uni_map, &mut splat_cache);
                let vr = vec_operand(f, vb, rhs, ty, &vec_map, &uni_map, &mut splat_cache);
                let nb = f.push_inst(
                    vb,
                    Inst::Bin {
                        op,
                        ty: ty.vec_of(VF as u8),
                        lhs: vl,
                        rhs: vr,
                    },
                    None,
                );
                vec_map.insert(id, Value::Inst(nb));
            }
            Role::ConsecStore => {
                let Inst::Store {
                    ptr,
                    value,
                    ty,
                    meta,
                } = inst
                else {
                    unreachable!()
                };
                let Value::Inst(g) = ptr else { unreachable!() };
                let Inst::Gep {
                    base,
                    offset: GepOffset::Scaled { scale, add, .. },
                } = *f.inst(g)
                else {
                    unreachable!()
                };
                let ng = f.push_inst(
                    vb,
                    Inst::Gep {
                        base,
                        offset: GepOffset::Scaled {
                            index: Value::Inst(viv),
                            scale,
                            add,
                        },
                    },
                    None,
                );
                let vv = vec_operand(f, vb, value, ty, &vec_map, &uni_map, &mut splat_cache);
                f.push_inst(
                    vb,
                    Inst::Store {
                        ptr: Value::Inst(ng),
                        value: vv,
                        ty: ty.vec_of(VF as u8),
                        meta,
                    },
                    None,
                );
            }
        }
    }
    let vnext = f.push_inst(
        vb,
        Inst::Bin {
            op: BinOp::Add,
            ty: Ty::I64,
            lhs: Value::Inst(viv),
            rhs: Value::ConstInt(VF),
        },
        None,
    );
    f.push_inst(vb, Inst::Br { target: vh }, None);
    // Close the vector phi.
    match f.inst_mut(viv) {
        Inst::Phi { incoming, .. } => incoming.push((vb, Value::Inst(vnext))),
        _ => unreachable!(),
    }

    // 6. MID falls through to the scalar remainder loop.
    f.push_inst(
        mid,
        Inst::Br {
            target: canon.header,
        },
        None,
    );

    // 7. The scalar loop now starts where the vector loop stopped.
    match f.inst_mut(canon.iv_phi) {
        Inst::Phi { incoming, .. } => {
            for (bb, v) in incoming.iter_mut() {
                if *bb == canon.pre {
                    *bb = mid;
                    *v = Value::Inst(viv);
                }
            }
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::PassCx;
    use crate::stats::Stats;
    use oraql_analysis::basic::BasicAA;
    use oraql_analysis::AAManager;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_vm::Interpreter;

    fn run_vec(m: &mut Module) -> Stats {
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let mut stats = Stats::new();
        for fi in 0..m.funcs.len() {
            let mut cx = PassCx {
                aa: &mut aa,
                stats: &mut stats,
            };
            LoopVectorize.run(m, FunctionId(fi as u32), &mut cx);
        }
        oraql_ir::verify::assert_valid(m);
        stats
    }

    /// out[i] = a[i] * k + b[i], distinct local arrays, n = 10 (so a
    /// scalar remainder of 2 runs).
    fn axpy(n: i64) -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let a = b.alloca(8 * n as u64, "a");
        let bb = b.alloca(8 * n as u64, "b");
        let out = b.alloca(8 * n as u64, "out");
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(n), |b, i| {
            let fi = b.si_to_fp(i);
            let ai = b.gep_scaled(a, i, 8, 0);
            b.store(Ty::F64, fi, ai);
            let bi = b.gep_scaled(bb, i, 8, 0);
            let f2 = b.fmul(fi, Value::const_f64(2.0));
            b.store(Ty::F64, f2, bi);
        });
        // The kernel loop (vectorizable).
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(n), |b, i| {
            let ai = b.gep_scaled(a, i, 8, 0);
            let av = b.load(Ty::F64, ai);
            let sc = b.fmul(av, Value::const_f64(3.0));
            let bi = b.gep_scaled(bb, i, 8, 0);
            let bv = b.load(Ty::F64, bi);
            let s = b.fadd(sc, bv);
            let oi = b.gep_scaled(out, i, 8, 0);
            b.store(Ty::F64, s, oi);
        });
        // Checksum.
        let acc = b.alloca(8, "acc");
        b.store(Ty::F64, Value::const_f64(0.0), acc);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(n), |b, i| {
            let oi = b.gep_scaled(out, i, 8, 0);
            let v = b.load(Ty::F64, oi);
            let c = b.load(Ty::F64, acc);
            let s = b.fadd(c, v);
            b.store(Ty::F64, s, acc);
        });
        let fin = b.load(Ty::F64, acc);
        b.print("checksum={}", vec![fin]);
        b.ret(None);
        b.finish();
        m
    }

    #[test]
    fn kernel_loop_vectorized_and_output_identical() {
        let mut m = axpy(10);
        let before = Interpreter::run_main(&m).unwrap();
        let stats = run_vec(&mut m);
        // Kernel loop vectorizes. The init loop uses si_to_fp(i) (an iv
        // use outside addresses) and the checksum loop is a reduction
        // through memory (uniform-address store): both rejected.
        assert_eq!(stats.get("loop vectorizer", "vectorized loops"), 1);
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, after.stdout);
        // 10 iterations become 2 vector iterations + 2 scalar.
        assert!(
            after.stats.host_insts < before.stats.host_insts,
            "insts {} -> {}",
            before.stats.host_insts,
            after.stats.host_insts
        );
    }

    #[test]
    fn short_trip_count_still_correct() {
        // n = 3 < VF: vector loop must not execute.
        let mut m = axpy(3);
        let before = Interpreter::run_main(&m).unwrap();
        run_vec(&mut m);
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, after.stdout);
    }

    #[test]
    fn exact_multiple_trip_count() {
        let mut m = axpy(8);
        let before = Interpreter::run_main(&m).unwrap();
        run_vec(&mut m);
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, after.stdout);
    }

    #[test]
    fn may_aliasing_arrays_reject_vectorization() {
        // Arrays come in as plain pointer args: may alias, must reject.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "kern", vec![Ty::Ptr, Ty::Ptr, Ty::I64], None);
        let a = b.arg(0);
        let o = b.arg(1);
        let n = b.arg(2);
        b.counted_loop(Value::ConstInt(0), n, |b, i| {
            let ai = b.gep_scaled(a, i, 8, 0);
            let v = b.load(Ty::F64, ai);
            let w = b.fmul(v, Value::const_f64(2.0));
            let oi = b.gep_scaled(o, i, 8, 0);
            b.store(Ty::F64, w, oi);
        });
        b.ret(None);
        b.finish();
        let stats = run_vec(&mut m);
        assert_eq!(stats.get("loop vectorizer", "vectorized loops"), 0);
    }

    #[test]
    fn restrict_args_allow_vectorization() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "kern", vec![Ty::Ptr, Ty::Ptr, Ty::I64], None);
        b.set_noalias(0, true);
        b.set_noalias(1, true);
        let a = b.arg(0);
        let o = b.arg(1);
        let n = b.arg(2);
        b.counted_loop(Value::ConstInt(0), n, |b, i| {
            let ai = b.gep_scaled(a, i, 8, 0);
            let v = b.load(Ty::F64, ai);
            let w = b.fmul(v, Value::const_f64(2.0));
            let oi = b.gep_scaled(o, i, 8, 0);
            b.store(Ty::F64, w, oi);
        });
        b.ret(None);
        b.finish();
        let stats = run_vec(&mut m);
        assert_eq!(stats.get("loop vectorizer", "vectorized loops"), 1);
    }

    #[test]
    fn shifted_same_array_rejected() {
        // a[i+1] = a[i] * 2 has a loop-carried dependence: must reject.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "kern", vec![Ty::Ptr, Ty::I64], None);
        b.set_noalias(0, true);
        let a = b.arg(0);
        let n = b.arg(1);
        b.counted_loop(Value::ConstInt(0), n, |b, i| {
            let src = b.gep_scaled(a, i, 8, 0);
            let v = b.load(Ty::F64, src);
            let w = b.fmul(v, Value::const_f64(2.0));
            let dst = b.gep_scaled(a, i, 8, 8); // a[i+1]
            b.store(Ty::F64, w, dst);
        });
        b.ret(None);
        b.finish();
        let stats = run_vec(&mut m);
        assert_eq!(stats.get("loop vectorizer", "vectorized loops"), 0);
    }

    #[test]
    fn in_place_update_is_vectorizable() {
        // a[i] = a[i] * 2: lane-aligned, safe.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let a = b.alloca(8 * 8, "a");
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(8), |b, i| {
            let ai = b.gep_scaled(a, i, 8, 0);
            b.store(Ty::I64, i, ai);
        });
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(8), |b, i| {
            let ai = b.gep_scaled(a, i, 8, 0);
            let v = b.load(Ty::I64, ai);
            let w = b.mul(v, Value::ConstInt(2));
            let ai2 = b.gep_scaled(a, i, 8, 0);
            b.store(Ty::I64, w, ai2);
        });
        let a7 = b.gep(a, 56);
        let l = b.load(Ty::I64, a7);
        b.print("{}", vec![l]);
        b.ret(None);
        b.finish();
        let before = Interpreter::run_main(&m).unwrap();
        let stats = run_vec(&mut m);
        assert!(stats.get("loop vectorizer", "vectorized loops") >= 1);
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, after.stdout);
        assert_eq!(after.stdout, "14\n");
    }
}
