/root/repo/target/debug/deps/extra-71960b0eb2c3bd8a.d: crates/analysis/tests/extra.rs

/root/repo/target/debug/deps/extra-71960b0eb2c3bd8a: crates/analysis/tests/extra.rs

crates/analysis/tests/extra.rs:
