//! Wire-level chaos against an in-process daemon: the client's
//! idempotent retries must absorb connection resets, torn frames,
//! garbled bytes, and injected delays without ever surfacing a wrong
//! answer, and fsync failures must never lose an acked write.

use std::sync::Arc;
use std::time::{Duration, Instant};

use oraql_faults::{FaultInjector, FaultPlan, FaultSite, Rate};
use oraql_served::{Client, ClientError, ClientOptions, CrashMode, Server, ServerOptions};

/// Fresh scratch directory, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("oraql_wirechaos_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Keep calling `f` until it succeeds — the breaker may be open or the
/// retry budget exhausted mid-storm, and that is allowed; what is not
/// allowed is failing to converge, or converging to a wrong value.
fn eventually<T>(what: &str, mut f: impl FnMut() -> Result<T, ClientError>) -> T {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match f() {
            Ok(v) => return v,
            Err(e) => {
                assert!(Instant::now() < deadline, "{what}: never converged: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// The expected verdict for key `k` — a pure function, so a garbled
/// frame that slipped through would show up as a value mismatch, not
/// just an error.
fn verdict(k: u64) -> (bool, u64) {
    (k.is_multiple_of(3), k.wrapping_mul(0x9e37_79b9))
}

/// Every wire fault class at once, at rates hot enough that each one
/// demonstrably fires, against a single client doing real work: all
/// writes land, all reads return exactly what was written, and the
/// client's retry counters show the chaos was absorbed rather than
/// avoided.
#[test]
fn retries_absorb_every_wire_fault_class() {
    let scratch = Scratch::new("absorb");
    let plan = FaultPlan::quiet(42)
        .with_rate(FaultSite::ConnReset, Rate::new(1, 8))
        .with_rate(FaultSite::FrameTorn, Rate::new(1, 9))
        .with_rate(FaultSite::FrameGarble, Rate::new(1, 7))
        .with_rate(FaultSite::ResponseDelay, Rate::new(1, 4));
    let mut config = ServerOptions::new(&scratch.0);
    config.faults = Some(Arc::new(FaultInjector::new(plan)));
    config.crash_mode = CrashMode::Simulate;
    let server = Server::start(&config, "127.0.0.1:0").unwrap();

    let client = Client::with_options(
        &server.addr(),
        ClientOptions {
            timeout: Duration::from_millis(500),
            cooldown: Duration::from_millis(20),
            max_retries: 4,
            seed: 7,
            ..ClientOptions::default()
        },
    );

    const KEYS: u64 = 160;
    for k in 0..KEYS {
        let (pass, unique) = verdict(k);
        eventually("put", || client.put_dec(k, pass, unique));
    }
    for k in 0..KEYS {
        let got = eventually("get", || client.get_dec(k));
        assert_eq!(got, Some(verdict(k)), "key {k} came back wrong");
    }

    // The storm actually happened: every armed site fired, and the
    // client paid retries (not errors surfaced to the caller).
    let summary = server.fault_summary();
    for site in [
        FaultSite::ConnReset,
        FaultSite::FrameTorn,
        FaultSite::FrameGarble,
        FaultSite::ResponseDelay,
    ] {
        let fired = summary
            .iter()
            .find(|(s, _, _)| *s == site)
            .map(|(_, _, f)| *f)
            .unwrap_or(0);
        assert!(fired > 0, "{} never fired: {summary:?}", site.as_str());
    }
    let cs = client.stats();
    assert!(
        cs.retries > 0,
        "chaos absorbed without a single retry? {cs}"
    );

    server.shutdown().unwrap();
}

/// A garbled response can never be *served*: the frame checksum turns
/// the flip into a transport error, so the value that finally comes
/// back is byte-exact even when every fourth frame is corrupted.
#[test]
fn garbled_frames_never_yield_wrong_values() {
    let scratch = Scratch::new("garble");
    let plan = FaultPlan::quiet(1337).with_rate(FaultSite::FrameGarble, Rate::new(1, 4));
    let mut config = ServerOptions::new(&scratch.0);
    config.faults = Some(Arc::new(FaultInjector::new(plan)));
    config.crash_mode = CrashMode::Simulate;
    let server = Server::start(&config, "127.0.0.1:0").unwrap();

    let client = Client::with_options(
        &server.addr(),
        ClientOptions {
            cooldown: Duration::from_millis(10),
            max_retries: 6,
            seed: 99,
            ..ClientOptions::default()
        },
    );
    for k in 0..96u64 {
        let (pass, unique) = verdict(k);
        eventually("put", || client.put_exe(k, pass, unique));
        let got = eventually("get", || client.get_exe(k));
        assert_eq!(got, Some(verdict(k)), "key {k}");
    }
    assert!(
        server
            .fault_summary()
            .iter()
            .any(|(s, _, f)| *s == FaultSite::FrameGarble && *f > 0),
        "frame-garble never fired"
    );
    server.shutdown().unwrap();
}

/// `fsync-fail` firing on every group-fsync pass costs durability
/// *timing*, never durability: the journal appends still happen, the
/// shard stays dirty and keeps retrying, and a restart over the same
/// directory serves every acked write.
#[test]
fn fsync_failures_do_not_lose_acked_writes() {
    let scratch = Scratch::new("fsyncfail");
    let plan = FaultPlan::quiet(5).with_rate(FaultSite::FsyncFail, Rate::always());
    let mut config = ServerOptions::new(&scratch.0);
    config.fsync_interval = Duration::from_millis(5);
    config.faults = Some(Arc::new(FaultInjector::new(plan)));
    config.crash_mode = CrashMode::Simulate;
    let server = Server::start(&config, "127.0.0.1:0").unwrap();

    let client = Client::new(&server.addr());
    const KEYS: u64 = 64;
    for k in 0..KEYS {
        let (pass, unique) = verdict(k);
        client.put_dec(k, pass, unique).unwrap();
    }
    // Give the fsync thread time to (fail to) sync a few times.
    std::thread::sleep(Duration::from_millis(50));
    let summary = server.fault_summary();
    assert!(
        summary
            .iter()
            .any(|(s, _, f)| *s == FaultSite::FsyncFail && *f > 0),
        "fsync-fail never fired: {summary:?}"
    );
    let _ = server.shutdown();

    // Restart clean: every acked write is there.
    let reopened = Server::start(&ServerOptions::new(&scratch.0), "127.0.0.1:0").unwrap();
    let client = Client::new(&reopened.addr());
    for k in 0..KEYS {
        assert_eq!(client.get_dec(k).unwrap(), Some(verdict(k)), "key {k}");
    }
    reopened.shutdown().unwrap();
}

/// BUSY is terminal per call, cheap, and honest: a saturated server
/// sheds instead of queueing, the shed request is *not* executed, and
/// the client surfaces `ClientError::Busy` without burning its retry
/// budget or tripping the breaker.
#[test]
fn busy_is_not_retried_and_does_not_trip_the_breaker() {
    let scratch = Scratch::new("busy");
    let plan = FaultPlan::quiet(8).with_rate(FaultSite::ResponseHang, Rate::new(1, 2));
    let mut config = ServerOptions::new(&scratch.0);
    config.max_inflight = 1;
    config.request_deadline = Duration::from_millis(20);
    config.fault_hang = Duration::from_millis(400);
    config.faults = Some(Arc::new(FaultInjector::new(plan)));
    config.crash_mode = CrashMode::Simulate;
    let server = Server::start(&config, "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let opts = ClientOptions {
        timeout: Duration::from_millis(900),
        cooldown: Duration::from_millis(50),
        max_retries: 1,
        seed: 3,
        ..ClientOptions::default()
    };
    let mut saw_busy = 0u64;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let addr = addr.clone();
            let opts = opts.clone();
            handles.push(s.spawn(move || {
                let client = Client::with_options(&addr, opts);
                let mut busy = 0u64;
                for i in 0..8u64 {
                    if let Err(ClientError::Busy) = client.get_dec(t * 100 + i) {
                        busy += 1;
                    }
                }
                let cs = client.stats();
                assert_eq!(cs.busy, busy, "{cs}");
                busy
            }));
        }
        for h in handles {
            saw_busy += h.join().unwrap();
        }
    });
    assert!(saw_busy > 0, "saturated single-slot server never shed");
    assert!(server.shed_count() > 0);
    let _ = server.shutdown();
}
