//! Deterministic pseudo-random generation for the property-style tests.
//!
//! The hermetic build has no `proptest`/`rand`, so the randomized tests
//! drive themselves from a splitmix64-based generator: fixed seeds,
//! fixed case counts, fully reproducible failures (the failing seed is
//! part of the assertion message at the call site).
//!
//! The generator itself now lives in `oraql_obs::rng` — one shared
//! definition for the fault injector, the workload generator and these
//! tests, byte-compatible with the original in-tree copy so existing
//! seeds keep producing the exact cases they were tuned on.
//!
//! Shared by several integration-test binaries; not every binary uses
//! every helper.
#![allow(dead_code)]
#![allow(unused_imports)]

pub use oraql_obs::rng::Gen;
