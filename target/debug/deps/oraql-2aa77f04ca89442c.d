/root/repo/target/debug/deps/oraql-2aa77f04ca89442c.d: crates/workloads/src/bin/oraql.rs

/root/repo/target/debug/deps/oraql-2aa77f04ca89442c: crates/workloads/src/bin/oraql.rs

crates/workloads/src/bin/oraql.rs:
