//! Regenerates the paper's **Fig. 6**: interesting `-stats` counters
//! for the original vs the ORAQL compilation of each benchmark — the
//! pass-level mechanism behind the query numbers (LICM hoists, GVN load
//! deletions, DSE store deletions, deleted loops, vectorized loops, SLP
//! vector instructions, machine instructions, register spills).

use criterion::{criterion_group, criterion_main, Criterion};
use oraql::report::render_trace_summary;
use oraql::trace::read_trace;
use oraql_bench::{print_table, run_all_configs, trace_artifact};

/// The statistics the paper's Fig. 6 selects (pass, stat, short label).
const SELECTED: &[(&str, &str)] = &[
    ("asm printer", "machine instructions generated (host)"),
    ("asm printer", "machine instructions generated (device)"),
    ("early CSE", "instructions eliminated"),
    ("LICM", "loads hoisted or sunk"),
    ("loop deletion", "deleted loops"),
    ("DSE", "stores deleted"),
    ("GVN", "loads deleted"),
    ("register allocation", "register spills inserted (host)"),
    ("SLP", "vector instructions generated"),
    ("loop vectorizer", "vectorized loops"),
    ("machine sinking", "instructions sunk"),
    ("memcpy optimization", "memcpys optimized"),
];

fn print_fig6() {
    let results = run_all_configs();
    let mut rows = Vec::new();
    for (info, r) in &results {
        for (pass, stat) in SELECTED {
            let before = r.baseline_stats.get(pass, stat);
            let after = r.final_stats.get(pass, stat);
            if before == after {
                continue; // Fig. 6 shows a selection of *changed* stats
            }
            let delta = if before == 0 {
                "new".to_string()
            } else {
                format!(
                    "{:+.1}%",
                    (after as f64 - before as f64) / before as f64 * 100.0
                )
            };
            rows.push(vec![
                format!("{} - {}", info.benchmark, info.model),
                pass.to_string(),
                stat.to_string(),
                before.to_string(),
                after.to_string(),
                delta,
            ]);
        }
    }
    print_table(
        "Fig. 6 — LLVM-style statistics, original vs ORAQL compilation (changed entries)",
        &["Benchmark", "Pass", "Property", "Original", "ORAQL", "Δ"],
        &rows,
    );

    // The probing effort behind those numbers, recomputed from the
    // same JSONL probe-trace artifact the Fig. 4 target consumes.
    let path = trace_artifact();
    let trace = read_trace(&path).expect("read trace artifact");
    println!("\n### Probe trace summary (from {})\n", path.display());
    print!("{}", render_trace_summary(&trace));
}

fn bench(c: &mut Criterion) {
    print_fig6();

    // Criterion: cost of one full compile (baseline vs ORAQL-installed)
    // for a mid-size configuration.
    let case = oraql_workloads::find_case("quicksilver").unwrap();
    let mut g = c.benchmark_group("compile");
    g.sample_size(20);
    g.bench_function("baseline/quicksilver", |b| {
        b.iter(|| {
            oraql::compile::compile(&*case.build, &oraql::compile::CompileOptions::baseline())
        })
    });
    g.bench_function("oraql-all-optimistic/quicksilver", |b| {
        b.iter(|| {
            oraql::compile::compile(
                &*case.build,
                &oraql::compile::CompileOptions::with_oraql(
                    oraql::Decisions::all_optimistic(),
                    case.scope.clone(),
                ),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
