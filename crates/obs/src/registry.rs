//! Process-wide metrics registry: sharded counters, gauges, and
//! fixed-bucket log2 histograms, registered by static name and
//! snapshot-able without stopping writers.
//!
//! Design notes:
//! - Handles are `&'static` (leaked on first registration) so hot
//!   paths cache them in `OnceLock`s and bump with one relaxed atomic
//!   op — no map lookup, no lock.
//! - Counters are sharded across cache-line-padded atomics indexed by
//!   a cheap thread-local, so the probe pool's workers do not bounce
//!   one cache line between cores.
//! - Histograms bucket values by `64 - leading_zeros`, giving exact
//!   powers of two as bucket bounds. Bucket merge is element-wise
//!   addition, which makes aggregation associative and commutative —
//!   the property the trace analyzer's determinism tests pin down.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

const SHARDS: usize = 8;

/// One cache line per shard so concurrent writers do not false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    IDX.with(|i| *i)
}

/// Monotonic counter, sharded per thread.
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    fn new() -> Self {
        Counter {
            shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, by: u64) {
        self.shards[shard_index()]
            .0
            .fetch_add(by, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Signed gauge (queue depths, in-flight requests).
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds value 0, bucket `i` holds
/// values in `[2^(i-1), 2^i)`, up to bucket 64 which tops out at
/// `u64::MAX`.
pub const BUCKETS: usize = 65;

fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket, used as the `le` label in the
/// text exposition.
fn bucket_max(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

fn bucket_of_le(le: u64) -> usize {
    if le == 0 {
        0
    } else {
        64 - le.leading_zeros() as usize
    }
}

/// Fixed-bucket log2 histogram. `observe` is one relaxed `fetch_add`
/// on the bucket plus two on count/sum; cheap enough for per-probe
/// latencies, too hot for per-instruction work (the VM batches).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a histogram. Merging is element-wise
/// addition, so any grouping of partial snapshots folds to the same
/// aggregate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }

    fn saturating_sub(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Upper-bound estimate of the `q`-quantile (0.0..=1.0): the
    /// inclusive max of the first bucket whose cumulative count
    /// reaches `ceil(q * count)`. Exact to within one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_max(i);
            }
        }
        bucket_max(BUCKETS - 1)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// A named collection of metrics. Most code uses the process-wide
/// [`global`] registry; tests construct their own to keep assertions
/// independent of whatever else the test process did.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<&'static str, Metric>>,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or fetch) a counter by name. Registering the same
    /// name twice returns the same handle; a name already bound to a
    /// different metric type panics — that is a programming error.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut m = lock_ignore_poison(&self.metrics);
        match m
            .entry(name)
            .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::new()))))
        {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` already registered with another type"),
        }
    }

    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut m = lock_ignore_poison(&self.metrics);
        match m
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::new()))))
        {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` already registered with another type"),
        }
    }

    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut m = lock_ignore_poison(&self.metrics);
        match m
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new()))))
        {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` already registered with another type"),
        }
    }

    /// Point-in-time copy of every registered metric. Writers keep
    /// writing; relaxed loads mean a snapshot taken mid-burst can be
    /// off by in-flight increments, never torn.
    pub fn snapshot(&self) -> Snapshot {
        let m = lock_ignore_poison(&self.metrics);
        let mut snap = Snapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.to_string(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.to_string(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.to_string(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// The process-wide registry used by all instrumented crates.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Point-in-time copy of a registry, renderable as Prometheus-style
/// text exposition and parseable back (the round-trip the CI smoke
/// and the served `METRICS` op rely on).
#[derive(Clone, Default, PartialEq, Debug)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counters and histograms since `earlier`; gauges keep their
    /// current value (a delta of a level makes no sense).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (name, v) in out.counters.iter_mut() {
            if let Some(e) = earlier.counters.get(name) {
                *v = v.saturating_sub(*e);
            }
        }
        for (name, h) in out.histograms.iter_mut() {
            if let Some(e) = earlier.histograms.get(name) {
                *h = h.saturating_sub(e);
            }
        }
        out
    }

    /// Prometheus-style text exposition: `# TYPE` headers, `name
    /// value` samples, histograms as cumulative `_bucket{le="..."}`
    /// plus `_sum`/`_count`. Deterministic (BTreeMap order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                cum += b;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cum}\n",
                    bucket_max(i)
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }

    /// Parse text produced by [`Snapshot::render`]. Returns `None` on
    /// any malformed line, so the CI smoke catches exposition drift.
    pub fn parse(text: &str) -> Option<Snapshot> {
        let mut snap = Snapshot::default();
        let mut kind: BTreeMap<String, String> = BTreeMap::new();
        // Cumulative-bucket accumulator per histogram.
        let mut last_cum: BTreeMap<String, u64> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next()?.to_string();
                let ty = it.next()?.to_string();
                if ty == "histogram" {
                    snap.histograms
                        .insert(name.clone(), HistogramSnapshot::default());
                }
                kind.insert(name, ty);
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (sample, value) = line.rsplit_once(' ')?;
            if let Some((name, label)) = sample.split_once("_bucket{le=\"") {
                let le = label.strip_suffix("\"}")?;
                let hist = snap.histograms.get_mut(name)?;
                let cum: u64 = value.parse().ok()?;
                if le == "+Inf" {
                    if cum != hist.count {
                        return None;
                    }
                    continue;
                }
                let prev = last_cum.get(name).copied().unwrap_or(0);
                let in_bucket = cum.checked_sub(prev)?;
                hist.buckets[bucket_of_le(le.parse().ok()?)] = in_bucket;
                hist.count += in_bucket;
                last_cum.insert(name.to_string(), cum);
                continue;
            }
            if let Some(name) = sample.strip_suffix("_sum") {
                if let Some(hist) = snap.histograms.get_mut(name) {
                    hist.sum = value.parse().ok()?;
                    continue;
                }
            }
            if let Some(name) = sample.strip_suffix("_count") {
                if let Some(hist) = snap.histograms.get_mut(name) {
                    if hist.count != value.parse().ok()? {
                        return None;
                    }
                    continue;
                }
            }
            match kind.get(sample).map(String::as_str) {
                Some("counter") => {
                    snap.counters
                        .insert(sample.to_string(), value.parse().ok()?);
                }
                Some("gauge") => {
                    snap.gauges.insert(sample.to_string(), value.parse().ok()?);
                }
                _ => return None,
            }
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shards_sum() {
        let r = Registry::new();
        let c = r.counter("test_counter");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Same name returns the same handle.
        r.counter("test_counter").inc();
        assert_eq!(c.get(), 43);
    }

    #[test]
    fn counter_is_thread_safe_across_shards() {
        let r = Registry::new();
        let c = r.counter("mt_counter");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_inc_dec_set() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-5);
        assert_eq!(g.get(), -5);
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn type_clash_panics() {
        let r = Registry::new();
        r.counter("clash");
        r.gauge("clash");
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_max(i)), i, "bucket_max inverts");
            assert_eq!(bucket_of_le(bucket_max(i)), i, "le mapping inverts");
        }
    }

    #[test]
    fn histogram_quantiles() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1110);
        // p50 of {1,2,3,4,100,1000} lands in the [2,4) bucket.
        assert_eq!(s.quantile(0.5), 3);
        assert_eq!(s.quantile(1.0), 1023);
        assert_eq!(s.quantile(0.0), 1);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let mut a = HistogramSnapshot::default();
        let mut b = HistogramSnapshot::default();
        let mut c = HistogramSnapshot::default();
        let mut all = HistogramSnapshot::default();
        // Deterministic pseudo-random values via the shared splitmix64.
        let mut g = crate::rng::Gen::new(0x9e3779b97f4a7c15);
        for i in 0..300 {
            let v = g.next_u64() % 100_000;
            [&mut a, &mut b, &mut c][i % 3].observe(v);
            all.observe(v);
        }
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), all);
    }

    #[test]
    fn snapshot_render_parse_roundtrip() {
        let r = Registry::new();
        r.counter("oraql_test_total").add(7);
        r.gauge("oraql_test_depth").set(-3);
        let h = r.histogram("oraql_test_micros");
        for v in [0u64, 1, 5, 5, 900, 1 << 40] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let text = snap.render();
        let parsed = Snapshot::parse(&text).expect("exposition parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Snapshot::parse("not a metric line at all, no value").is_none());
        assert!(Snapshot::parse("unregistered_name 5").is_none());
        // Inconsistent +Inf bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 2\nh_count 2\n";
        assert!(Snapshot::parse(bad).is_none());
    }

    #[test]
    fn snapshot_delta_subtracts_counters_keeps_gauges() {
        let r = Registry::new();
        let c = r.counter("d_total");
        let g = r.gauge("d_gauge");
        let h = r.histogram("d_hist");
        c.add(10);
        g.set(4);
        h.observe(100);
        let first = r.snapshot();
        c.add(5);
        g.set(9);
        h.observe(200);
        let d = r.snapshot().delta(&first);
        assert_eq!(d.counters["d_total"], 5);
        assert_eq!(d.gauges["d_gauge"], 9);
        assert_eq!(d.histograms["d_hist"].count, 1);
        assert_eq!(d.histograms["d_hist"].sum, 200);
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("oraql_obs_selftest_total").inc();
        let snap = global().snapshot();
        assert!(snap.counters["oraql_obs_selftest_total"] >= 1);
    }
}
