//! Property-style end-to-end soundness: for randomly generated
//! programs, compiling with the full conservative pipeline must
//! preserve the printed output exactly — including programs that pass
//! aliased pointers into kernels (the situation optimism gets wrong).
//!
//! This is the load-bearing guarantee behind the whole limit study:
//! pessimistic answers must always be safe, so any divergence under
//! ORAQL is attributable to the optimistic answers alone.
//!
//! Randomized via the deterministic generator in `common` (fixed seeds,
//! reproducible failures).

mod common;

use common::Gen;
use oraql_suite::ir::builder::FunctionBuilder;
use oraql_suite::ir::{Module, Ty, Value};
use oraql_suite::oraql::compile::{compile, CompileOptions, Scope};
use oraql_suite::oraql::Decisions;
use oraql_suite::vm::Interpreter;

/// One step of a generated kernel body.
#[derive(Debug, Clone)]
enum Op {
    /// `slots[dst] = const`
    StoreConst { dst: usize, off: u8, val: i8 },
    /// `v = load slots[src]` then print it
    LoadPrint { src: usize, off: u8 },
    /// `slots[dst] = slots[a] + slots[b]` (read-modify-write)
    Combine { dst: usize, a: usize, b: usize },
    /// copy 16 bytes between slots
    Copy { dst: usize, src: usize },
}

fn random_op(g: &mut Gen) -> Op {
    match g.range_u64(0, 4) {
        0 => Op::StoreConst {
            dst: g.range_usize(0, 4),
            off: g.range_u64(0, 3) as u8,
            val: g.next_u64() as i8,
        },
        1 => Op::LoadPrint {
            src: g.range_usize(0, 4),
            off: g.range_u64(0, 3) as u8,
        },
        2 => Op::Combine {
            dst: g.range_usize(0, 4),
            a: g.range_usize(0, 4),
            b: g.range_usize(0, 4),
        },
        _ => Op::Copy {
            dst: g.range_usize(0, 4),
            src: g.range_usize(0, 4),
        },
    }
}

fn random_ops(g: &mut Gen, len_lo: usize, len_hi: usize) -> Vec<Op> {
    let n = g.range_usize(len_lo, len_hi);
    (0..n).map(|_| random_op(g)).collect()
}

fn random_wiring(g: &mut Gen) -> [u8; 4] {
    [
        g.range_u64(0, 4) as u8,
        g.range_u64(0, 4) as u8,
        g.range_u64(0, 4) as u8,
        g.range_u64(0, 4) as u8,
    ]
}

/// Builds a program: main allocates four 32-byte buffers, aliases some
/// kernel parameters according to `wiring` (values mod 4 pick buffers,
/// possibly repeating = aliasing!), and the kernel executes `ops`
/// through its opaque pointer parameters.
fn build_program(ops: &[Op], wiring: [u8; 4], loop_trip: u8) -> Module {
    let mut m = Module::new("prop");
    let kern = {
        let mut b = FunctionBuilder::new(&mut m, "kernel", vec![Ty::Ptr; 4], None);
        b.set_src_file("gen.c");
        let slots: Vec<Value> = (0..4).map(|i| b.arg(i)).collect();
        let emit_ops = |b: &mut FunctionBuilder| {
            for op in ops {
                match *op {
                    Op::StoreConst { dst, off, val } => {
                        let p = b.gep(slots[dst], 8 * off as i64);
                        b.store(Ty::I64, Value::ConstInt(val as i64), p);
                    }
                    Op::LoadPrint { src, off } => {
                        let p = b.gep(slots[src], 8 * off as i64);
                        let v = b.load(Ty::I64, p);
                        b.print("{}", vec![v]);
                    }
                    Op::Combine { dst, a, b: bb } => {
                        let pa = b.gep(slots[a], 0);
                        let va = b.load(Ty::I64, pa);
                        let pb = b.gep(slots[bb], 8);
                        let vb = b.load(Ty::I64, pb);
                        let s = b.add(va, vb);
                        let pd = b.gep(slots[dst], 16);
                        b.store(Ty::I64, s, pd);
                    }
                    Op::Copy { dst, src } => {
                        b.memcpy(slots[dst], slots[src], Value::ConstInt(16));
                    }
                }
            }
        };
        if loop_trip > 0 {
            b.counted_loop(
                Value::ConstInt(0),
                Value::ConstInt(loop_trip as i64),
                |b, _| emit_ops(b),
            );
        } else {
            emit_ops(&mut b);
        }
        // Final state dump so silent corruption is visible.
        for s in &slots {
            for off in [0i64, 8, 16] {
                let p = b.gep(*s, off);
                let v = b.load(Ty::I64, p);
                b.print("{}", vec![v]);
            }
        }
        b.ret(None);
        b.finish()
    };
    let g = m.add_global("buffers", 4 * 32, vec![], false);
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    b.set_src_file("main.c");
    let args: Vec<Value> = wiring
        .iter()
        .map(|&w| b.gep(Value::Global(g), 32 * (w as i64 % 4)))
        .collect();
    // Initialize all buffers.
    for i in 0..16i64 {
        let p = b.gep(Value::Global(g), 8 * i);
        b.store(Ty::I64, Value::ConstInt(i * 3 + 1), p);
    }
    b.call(kern, args, None);
    b.ret(None);
    b.finish();
    m
}

/// The conservative pipeline never changes program output, no matter
/// how the caller aliases the kernel's pointer parameters.
#[test]
fn conservative_pipeline_preserves_output() {
    for seed in 0..64 {
        let mut g = Gen::new(seed);
        let ops = random_ops(&mut g, 1, 12);
        let wiring = random_wiring(&mut g);
        let loop_trip = g.range_u64(0, 4) as u8;
        let use_cfl = g.bool();
        let build = move || build_program(&ops, wiring, loop_trip);
        let reference = Interpreter::run_main(&build()).unwrap();
        let compiled = compile(
            &build,
            &CompileOptions {
                use_cfl,
                verify_each: true,
                ..CompileOptions::default()
            },
        );
        let optimized = Interpreter::run_main(&compiled.module).unwrap();
        assert_eq!(reference.stdout, optimized.stdout, "seed {seed}");
        // Optimization never makes the program do more work.
        assert!(
            optimized.stats.total_insts() <= reference.stats.total_insts(),
            "seed {seed}"
        );
    }
}

/// With ORAQL fully pessimistic the output is also preserved
/// (pessimistic == baseline), regardless of wiring.
#[test]
fn all_pessimistic_oraql_is_baseline() {
    for seed in 0..64 {
        let mut g = Gen::new(seed);
        let ops = random_ops(&mut g, 1, 8);
        let wiring = random_wiring(&mut g);
        let build = move || build_program(&ops, wiring, 2);
        let baseline = compile(&build, &CompileOptions::baseline());
        let pess = compile(
            &build,
            &CompileOptions::with_oraql(Decisions::all_pessimistic(), Scope::everything()),
        );
        let a = Interpreter::run_main(&baseline.module).unwrap();
        let b = Interpreter::run_main(&pess.module).unwrap();
        assert_eq!(a.stdout, b.stdout, "seed {seed}");
    }
}

/// When no kernel parameters alias, even FULL optimism preserves the
/// output: the optimistic answers happen to be true.
#[test]
fn full_optimism_is_safe_without_aliasing() {
    for seed in 0..64 {
        let mut g = Gen::new(seed);
        let ops = random_ops(&mut g, 1, 10);
        let loop_trip = g.range_u64(0, 3) as u8;
        let wiring = [0u8, 1, 2, 3]; // all distinct: no aliasing
        let build = move || build_program(&ops, wiring, loop_trip);
        let reference = Interpreter::run_main(&build()).unwrap();
        let opt = compile(
            &build,
            &CompileOptions::with_oraql(Decisions::all_optimistic(), Scope::everything()),
        );
        let out = Interpreter::run_main(&opt.module).unwrap();
        assert_eq!(reference.stdout, out.stdout, "seed {seed}");
    }
}
