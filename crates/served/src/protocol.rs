//! The verdict-server wire protocol: framing, operations, status codes.
//!
//! Everything on the wire is a **frame** — a little-endian `u32` length
//! prefix, a little-endian `u64` FNV-1a checksum of the payload, and
//! then that many payload bytes:
//!
//! ```text
//! frame:    len u32 LE | sum u64 LE | payload (len bytes)
//! request:  version u8 | op u8     | req_id u64 LE | body
//! response: version u8 | status u8 | req_id u64 LE | body
//! ```
//!
//! Version 2 hardened the v1 protocol for a misbehaving wire:
//!
//! * the **checksum** makes any corrupted frame — a flipped bit
//!   anywhere in the payload — a detectable [`io::ErrorKind::InvalidData`]
//!   error instead of a silently wrong verdict;
//! * the **request id** is chosen by the client and echoed verbatim by
//!   the server, so a retried idempotent request can never be paired
//!   with a stale or foreign response.
//!
//! The version byte is [`VERSION`]; a server that does not speak the
//! client's version answers [`Status::BadVersion`] instead of guessing.
//! [`Status::Busy`] is the explicit load-shedding answer: the server is
//! alive but refused admission, and the client should fall back to its
//! local tiers without retrying or tripping its breaker. The
//! authoritative human-readable description (including a worked hex
//! example that `tests/served_roundtrip.rs` pins against this module)
//! lives in `docs/PROTOCOL.md`.
//!
//! # Concurrency contract
//!
//! The module is pure data plus blocking frame I/O helpers; nothing
//! here holds state. [`read_frame`]/[`write_frame`] may be called from
//! any thread on any `Read`/`Write`; one connection must not be shared
//! between threads without external serialization (interleaved frames
//! are garbage).

use std::io::{self, Read, Write};

/// Protocol version spoken by this build (request and response byte 0).
/// Version 2 added the frame checksum, the echoed request id, and the
/// `busy` status; there is no v1 compatibility mode.
pub const VERSION: u8 = 2;

/// Upper bound on one frame's payload. Mirrors the store journal's
/// `MAX_PAYLOAD` defense: a corrupted or hostile length prefix must not
/// force a multi-gigabyte allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// FNV-1a 64 over `bytes` — the frame checksum. The same function the
/// store journal uses for its record checksums; cheap, and a single
/// flipped bit anywhere in the payload changes it.
pub fn frame_sum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Request operations (request byte 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Liveness check; empty body, empty `Ok` response.
    Ping = 0x01,
    /// Look up a decisions-digest verdict: body `key u64 LE`.
    GetDec = 0x02,
    /// Look up an executable-hash verdict: body `key u64 LE`.
    GetExe = 0x03,
    /// Append a decisions-digest verdict: body `key u64 | pass u8 | unique u64`.
    PutDec = 0x04,
    /// Append an executable-hash verdict: same body shape as [`Op::PutDec`].
    PutExe = 0x05,
    /// Look up the reference outputs for a case salt: body `salt u64 LE`.
    GetRefs = 0x06,
    /// Append reference outputs: body `salt u64 | utf8 bytes` (the
    /// store's `\x1e`-joined encoding).
    PutRefs = 0x07,
    /// Server + per-shard counters as UTF-8 text; empty body.
    Stats = 0x08,
    /// Force a group fsync of every dirty shard now; empty body.
    Sync = 0x09,
    /// Compact every shard journal; empty body, text summary response.
    Compact = 0x0a,
    /// Metrics-registry snapshot as Prometheus-style text exposition;
    /// empty body. See `docs/OPERATIONS.md` § Monitoring.
    Metrics = 0x0b,
}

impl Op {
    /// Decodes a request op byte.
    pub fn from_byte(b: u8) -> Option<Op> {
        Some(match b {
            0x01 => Op::Ping,
            0x02 => Op::GetDec,
            0x03 => Op::GetExe,
            0x04 => Op::PutDec,
            0x05 => Op::PutExe,
            0x06 => Op::GetRefs,
            0x07 => Op::PutRefs,
            0x08 => Op::Stats,
            0x09 => Op::Sync,
            0x0a => Op::Compact,
            0x0b => Op::Metrics,
            _ => return None,
        })
    }
}

/// Response status codes (response byte 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success; body is op-specific (see [`Response`]).
    Ok = 0x00,
    /// A lookup found no record for the key; empty body.
    NotFound = 0x01,
    /// The request payload could not be decoded; empty body.
    BadFrame = 0x02,
    /// The request op byte is unknown; empty body.
    BadOp = 0x03,
    /// The request version byte is not [`VERSION`]; body carries the
    /// server's version byte.
    BadVersion = 0x04,
    /// The server hit an I/O error executing the request; body is a
    /// UTF-8 error message.
    Io = 0x05,
    /// The server is overloaded and refused the request admission
    /// (load shedding); empty body. The request was **not** executed.
    /// Clients must fall back to their local tiers without retrying —
    /// the server is alive, retries only feed the overload.
    Busy = 0x06,
}

impl Status {
    /// Decodes a response status byte.
    pub fn from_byte(b: u8) -> Option<Status> {
        Some(match b {
            0x00 => Status::Ok,
            0x01 => Status::NotFound,
            0x02 => Status::BadFrame,
            0x03 => Status::BadOp,
            0x04 => Status::BadVersion,
            0x05 => Status::Io,
            0x06 => Status::Busy,
            _ => return None,
        })
    }

    /// Stable human-readable name (used in errors and docs).
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::NotFound => "not-found",
            Status::BadFrame => "bad-frame",
            Status::BadOp => "bad-op",
            Status::BadVersion => "bad-version",
            Status::Io => "io-error",
            Status::Busy => "busy",
        }
    }
}

/// One decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// [`Op::Ping`].
    Ping,
    /// [`Op::GetDec`].
    GetDec {
        /// Salted decisions digest.
        key: u64,
    },
    /// [`Op::GetExe`].
    GetExe {
        /// Salted module hash.
        key: u64,
    },
    /// [`Op::PutDec`].
    PutDec {
        /// Salted decisions digest.
        key: u64,
        /// Did the compiled program verify?
        pass: bool,
        /// Unique ORAQL queries the probe reported.
        unique: u64,
    },
    /// [`Op::PutExe`].
    PutExe {
        /// Salted module hash.
        key: u64,
        /// Did the compiled program verify?
        pass: bool,
        /// Unique ORAQL queries the probe reported.
        unique: u64,
    },
    /// [`Op::GetRefs`].
    GetRefs {
        /// Case salt.
        salt: u64,
    },
    /// [`Op::PutRefs`].
    PutRefs {
        /// Case salt.
        salt: u64,
        /// `\x1e`-joined accepted reference outputs.
        refs: String,
    },
    /// [`Op::Stats`].
    Stats,
    /// [`Op::Sync`].
    Sync,
    /// [`Op::Compact`].
    Compact,
    /// [`Op::Metrics`].
    Metrics,
}

impl Request {
    /// The op byte this request travels under.
    pub fn op(&self) -> Op {
        match self {
            Request::Ping => Op::Ping,
            Request::GetDec { .. } => Op::GetDec,
            Request::GetExe { .. } => Op::GetExe,
            Request::PutDec { .. } => Op::PutDec,
            Request::PutExe { .. } => Op::PutExe,
            Request::GetRefs { .. } => Op::GetRefs,
            Request::PutRefs { .. } => Op::PutRefs,
            Request::Stats => Op::Stats,
            Request::Sync => Op::Sync,
            Request::Compact => Op::Compact,
            Request::Metrics => Op::Metrics,
        }
    }

    fn body(&self) -> Vec<u8> {
        match self {
            Request::Ping
            | Request::Stats
            | Request::Sync
            | Request::Compact
            | Request::Metrics => Vec::new(),
            Request::GetDec { key } | Request::GetExe { key } | Request::GetRefs { salt: key } => {
                key.to_le_bytes().to_vec()
            }
            Request::PutDec { key, pass, unique } | Request::PutExe { key, pass, unique } => {
                let mut b = Vec::with_capacity(17);
                b.extend_from_slice(&key.to_le_bytes());
                b.push(u8::from(*pass));
                b.extend_from_slice(&unique.to_le_bytes());
                b
            }
            Request::PutRefs { salt, refs } => {
                let mut b = Vec::with_capacity(8 + refs.len());
                b.extend_from_slice(&salt.to_le_bytes());
                b.extend_from_slice(refs.as_bytes());
                b
            }
        }
    }

    /// Encodes the request as one complete frame (length prefix and
    /// checksum included), tagged with the caller-chosen `req_id` the
    /// server must echo.
    pub fn encode(&self, req_id: u64) -> Vec<u8> {
        frame(&[VERSION, self.op() as u8], req_id, &self.body())
    }

    /// Decodes a request from a frame *payload* (the bytes after the
    /// length prefix and checksum), returning the request id and the
    /// request. A decode failure maps onto the status the server must
    /// answer with, paired with the request id to echo (0 when the
    /// header itself was too short to carry one).
    pub fn decode(payload: &[u8]) -> Result<(u64, Request), (Status, u64)> {
        if payload.len() < 10 {
            return Err((Status::BadFrame, 0));
        }
        let (version, op_byte) = (payload[0], payload[1]);
        let req_id = u64::from_le_bytes(payload[2..10].try_into().expect("len checked"));
        let body = &payload[10..];
        if version != VERSION {
            return Err((Status::BadVersion, req_id));
        }
        let op = Op::from_byte(op_byte).ok_or((Status::BadOp, req_id))?;
        let key_of = |b: &[u8]| -> Result<u64, (Status, u64)> {
            let raw: [u8; 8] = b.try_into().map_err(|_| (Status::BadFrame, req_id))?;
            Ok(u64::from_le_bytes(raw))
        };
        let verdict_of = |b: &[u8]| -> Result<(u64, bool, u64), (Status, u64)> {
            if b.len() != 17 {
                return Err((Status::BadFrame, req_id));
            }
            let key = key_of(&b[0..8])?;
            let pass = match b[8] {
                0 => false,
                1 => true,
                _ => return Err((Status::BadFrame, req_id)),
            };
            Ok((key, pass, key_of(&b[9..17])?))
        };
        let req = match op {
            Op::Ping | Op::Stats | Op::Sync | Op::Compact | Op::Metrics => {
                if !body.is_empty() {
                    return Err((Status::BadFrame, req_id));
                }
                match op {
                    Op::Ping => Request::Ping,
                    Op::Stats => Request::Stats,
                    Op::Sync => Request::Sync,
                    Op::Metrics => Request::Metrics,
                    _ => Request::Compact,
                }
            }
            Op::GetDec => Request::GetDec { key: key_of(body)? },
            Op::GetExe => Request::GetExe { key: key_of(body)? },
            Op::GetRefs => Request::GetRefs {
                salt: key_of(body)?,
            },
            Op::PutDec => {
                let (key, pass, unique) = verdict_of(body)?;
                Request::PutDec { key, pass, unique }
            }
            Op::PutExe => {
                let (key, pass, unique) = verdict_of(body)?;
                Request::PutExe { key, pass, unique }
            }
            Op::PutRefs => {
                if body.len() < 8 {
                    return Err((Status::BadFrame, req_id));
                }
                Request::PutRefs {
                    salt: key_of(&body[0..8])?,
                    refs: String::from_utf8(body[8..].to_vec())
                        .map_err(|_| (Status::BadFrame, req_id))?,
                }
            }
        };
        Ok((req_id, req))
    }
}

/// One decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// [`Status::Ok`] with an empty body (ping, puts, sync).
    Ok,
    /// [`Status::Ok`] carrying a verdict (get-dec / get-exe).
    Verdict {
        /// Did the compiled program verify?
        pass: bool,
        /// Unique ORAQL queries the recorded probe reported.
        unique: u64,
    },
    /// [`Status::Ok`] carrying UTF-8 text (refs, stats, compact
    /// summaries).
    Text(String),
    /// [`Status::NotFound`] — the lookup key has no record.
    NotFound,
    /// [`Status::Busy`] — the request was shed, not executed.
    Busy,
    /// Any error status; the string is the (possibly empty) body.
    Err(Status, String),
}

impl Response {
    /// Encodes the response as one complete frame, echoing `req_id`.
    pub fn encode(&self, req_id: u64) -> Vec<u8> {
        match self {
            Response::Ok => frame(&[VERSION, Status::Ok as u8], req_id, &[]),
            Response::Verdict { pass, unique } => {
                let mut body = Vec::with_capacity(9);
                body.push(u8::from(*pass));
                body.extend_from_slice(&unique.to_le_bytes());
                frame(&[VERSION, Status::Ok as u8], req_id, &body)
            }
            Response::Text(t) => frame(&[VERSION, Status::Ok as u8], req_id, t.as_bytes()),
            Response::NotFound => frame(&[VERSION, Status::NotFound as u8], req_id, &[]),
            Response::Busy => frame(&[VERSION, Status::Busy as u8], req_id, &[]),
            Response::Err(status, msg) => frame(&[VERSION, *status as u8], req_id, msg.as_bytes()),
        }
    }

    /// Decodes a response from a frame payload, returning the echoed
    /// request id and the response. `op` is the request this response
    /// answers — `Ok` bodies are op-specific.
    pub fn decode(op: Op, payload: &[u8]) -> Result<(u64, Response), String> {
        if payload.len() < 10 {
            return Err("short response payload".into());
        }
        let (version, status) = (payload[0], payload[1]);
        let req_id = u64::from_le_bytes(payload[2..10].try_into().expect("len checked"));
        let body = &payload[10..];
        if version != VERSION {
            return Err(format!("server speaks protocol version {version}"));
        }
        let status = Status::from_byte(status)
            .ok_or_else(|| format!("unknown response status {status:#04x}"))?;
        let resp = match status {
            Status::Ok => match op {
                Op::GetDec | Op::GetExe => {
                    if body.len() != 9 || body[0] > 1 {
                        return Err("malformed verdict body".into());
                    }
                    let raw: [u8; 8] = body[1..9].try_into().map_err(|_| "short verdict body")?;
                    Response::Verdict {
                        pass: body[0] == 1,
                        unique: u64::from_le_bytes(raw),
                    }
                }
                Op::GetRefs | Op::Stats | Op::Compact | Op::Metrics => Response::Text(
                    String::from_utf8(body.to_vec()).map_err(|_| "non-UTF-8 text body")?,
                ),
                Op::Ping | Op::PutDec | Op::PutExe | Op::PutRefs | Op::Sync => Response::Ok,
            },
            Status::NotFound => Response::NotFound,
            Status::Busy => Response::Busy,
            err => Response::Err(err, String::from_utf8_lossy(body).into_owned()),
        };
        Ok((req_id, resp))
    }
}

fn frame(head: &[u8], req_id: u64, body: &[u8]) -> Vec<u8> {
    let len = head.len() + 8 + body.len();
    let mut f = Vec::with_capacity(12 + len);
    f.extend_from_slice(&(len as u32).to_le_bytes());
    f.extend_from_slice(&[0u8; 8]); // checksum placeholder
    f.extend_from_slice(head);
    f.extend_from_slice(&req_id.to_le_bytes());
    f.extend_from_slice(body);
    let sum = frame_sum(&f[12..]);
    f[4..12].copy_from_slice(&sum.to_le_bytes());
    f
}

/// Reads one frame, verifies its checksum, and returns its payload.
/// `Ok(None)` is a clean EOF *between* frames (the peer hung up); EOF
/// mid-frame, a length prefix past [`MAX_FRAME`], or a checksum
/// mismatch is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut head = [0u8; 12];
    let mut got = 0;
    while got < head.len() {
        match r.read(&mut head[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(head[0..4].try_into().expect("sized")) as usize;
    let sum = u64::from_le_bytes(head[4..12].try_into().expect("sized"));
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if frame_sum(&payload) != sum {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    Ok(Some(payload))
}

/// Writes one already-encoded frame (as produced by
/// [`Request::encode`] / [`Response::encode`]).
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::GetDec { key: 7 },
            Request::GetExe { key: u64::MAX },
            Request::PutDec {
                key: 0x0123_4567_89ab_cdef,
                pass: true,
                unique: 42,
            },
            Request::PutExe {
                key: 1,
                pass: false,
                unique: 0,
            },
            Request::GetRefs { salt: 99 },
            Request::PutRefs {
                salt: 3,
                refs: "checksum 1.5\n\x1eother\n".into(),
            },
            Request::Stats,
            Request::Sync,
            Request::Compact,
            Request::Metrics,
        ]
    }

    #[test]
    fn request_roundtrip() {
        for (i, req) in all_requests().into_iter().enumerate() {
            let req_id = 0x1000 + i as u64;
            let f = req.encode(req_id);
            let len = u32::from_le_bytes(f[0..4].try_into().unwrap()) as usize;
            assert_eq!(len, f.len() - 12, "{req:?}");
            let sum = u64::from_le_bytes(f[4..12].try_into().unwrap());
            assert_eq!(sum, frame_sum(&f[12..]), "{req:?}");
            assert_eq!(Request::decode(&f[12..]), Ok((req_id, req)));
        }
    }

    #[test]
    fn response_roundtrip() {
        let cases = [
            (Op::Ping, Response::Ok),
            (
                Op::GetDec,
                Response::Verdict {
                    pass: true,
                    unique: 42,
                },
            ),
            (
                Op::GetExe,
                Response::Verdict {
                    pass: false,
                    unique: 0,
                },
            ),
            (Op::GetExe, Response::NotFound),
            (Op::GetRefs, Response::Text("a\x1eb".into())),
            (Op::Stats, Response::Text("total: 0 lookups".into())),
            (Op::PutDec, Response::Ok),
            (Op::PutDec, Response::Busy),
            (Op::GetDec, Response::Busy),
            (Op::Sync, Response::Ok),
            (Op::Compact, Response::Text("compacted 3 shards".into())),
            (
                Op::Metrics,
                Response::Text(
                    "# TYPE oraql_store_appends_total counter\noraql_store_appends_total 7\n"
                        .into(),
                ),
            ),
            (Op::Ping, Response::Err(Status::BadOp, String::new())),
            (Op::GetDec, Response::Err(Status::Io, "disk died".into())),
        ];
        for (i, (op, resp)) in cases.into_iter().enumerate() {
            let req_id = 0x2000 + i as u64;
            let f = resp.encode(req_id);
            assert_eq!(
                Response::decode(op, &f[12..]),
                Ok((req_id, resp.clone())),
                "{resp:?}"
            );
        }
    }

    /// Builds a raw request payload (no frame prefix): `version | op |
    /// req_id | body`.
    fn raw(version: u8, op: u8, req_id: u64, body: &[u8]) -> Vec<u8> {
        let mut p = vec![version, op];
        p.extend_from_slice(&req_id.to_le_bytes());
        p.extend_from_slice(body);
        p
    }

    #[test]
    fn malformed_requests_classify() {
        assert_eq!(Request::decode(&[]), Err((Status::BadFrame, 0)));
        assert_eq!(Request::decode(&[VERSION]), Err((Status::BadFrame, 0)));
        // Header too short to carry a request id: echo id 0.
        assert_eq!(
            Request::decode(&[VERSION, Op::Ping as u8, 1, 2]),
            Err((Status::BadFrame, 0))
        );
        // Bad version / bad op echo the parsed request id.
        assert_eq!(
            Request::decode(&raw(9, Op::Ping as u8, 77, &[])),
            Err((Status::BadVersion, 77))
        );
        assert_eq!(
            Request::decode(&raw(VERSION, 0xee, 78, &[])),
            Err((Status::BadOp, 78))
        );
        // Ping carries no body.
        assert_eq!(
            Request::decode(&raw(VERSION, Op::Ping as u8, 79, &[1])),
            Err((Status::BadFrame, 79))
        );
        // Truncated key.
        assert_eq!(
            Request::decode(&raw(VERSION, Op::GetDec as u8, 80, &[1, 2, 3])),
            Err((Status::BadFrame, 80))
        );
        // Non-boolean pass byte.
        let mut put = Request::PutDec {
            key: 1,
            pass: true,
            unique: 2,
        }
        .encode(81);
        put[12 + 2 + 8 + 8] = 7;
        assert_eq!(Request::decode(&put[12..]), Err((Status::BadFrame, 81)));
    }

    #[test]
    fn frame_io_roundtrip_and_eof() {
        let mut buf = Vec::new();
        let req = Request::GetDec { key: 5 };
        write_frame(&mut buf, &req.encode(1)).unwrap();
        write_frame(&mut buf, &Request::Ping.encode(2)).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()),
            Ok((1, req))
        );
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()),
            Ok((2, Request::Ping))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        // EOF inside a frame is an error, not a silent None.
        let mut torn = std::io::Cursor::new(Request::Ping.encode(3)[..13].to_vec());
        assert!(read_frame(&mut torn).is_err());
        // An absurd length prefix is rejected before allocating.
        let mut hostile = std::io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(read_frame(&mut hostile).is_err());
    }

    #[test]
    fn checksum_catches_any_single_byte_garble() {
        let clean = Request::PutDec {
            key: 0xdead_beef,
            pass: true,
            unique: 9,
        }
        .encode(0x51);
        // Flip each payload byte in turn: every corruption must be
        // detected (this is what makes the `frame-garble` fault site
        // recoverable rather than silently unsound).
        for i in 12..clean.len() {
            let mut garbled = clean.clone();
            garbled[i] ^= 0x40;
            let mut r = std::io::Cursor::new(garbled);
            let err = read_frame(&mut r).expect_err("garble must not pass");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "byte {i}");
        }
        // And the clean frame still reads.
        let mut r = std::io::Cursor::new(clean);
        assert!(read_frame(&mut r).unwrap().is_some());
    }
}
