//! # oraql-vm — deterministic execution substrate
//!
//! Stands in for the paper's native testbed (Skylake host + A100 device).
//! Provides:
//!
//! * [`interp::Interpreter`] — a byte-addressable, deterministic IR
//!   interpreter that captures program output (the verification channel),
//!   counts executed instructions (the `perf` stand-in) and models cost
//!   with a simple cycle table ([`interp::ExecStats`]),
//! * [`machine`] — a mini machine backend (block linearization, live
//!   intervals, linear-scan register allocation, stack-frame layout) that
//!   produces the per-kernel static properties of the paper's Fig. 7
//!   (`# registers`, `# bytes stack frame`) and the `asm printer`
//!   machine-instruction counts of Fig. 6.
//!
//! Determinism is the load-bearing property: a miscompilation caused by
//! a wrong optimistic no-alias answer must change the printed output
//! *reproducibly* so the ORAQL driver's bisection has a reliable signal.

pub mod decode;
pub mod interp;
pub mod machine;
pub mod memory;
pub mod rtval;

pub use decode::DecodedFunction;
pub use interp::{
    AccessEvent, ExecStats, InterpMode, Interpreter, RunOutcome, RuntimeError, VmFault,
    DEFAULT_FUEL,
};
pub use machine::{lower_function, LowerError, MachineSummary};
pub use rtval::RtVal;
