/root/repo/target/release/examples/fcount-e3229743839aabe4.d: crates/bench/examples/fcount.rs

/root/repo/target/release/examples/fcount-e3229743839aabe4: crates/bench/examples/fcount.rs

crates/bench/examples/fcount.rs:
