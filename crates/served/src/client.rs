//! The blocking client the driver embeds as its third cache tier.
//!
//! Design goals, in order:
//!
//! 1. **A dead server must not slow a probe down.** Connects and reads
//!    are bounded by short timeouts, and after a failure the client
//!    trips a circuit breaker: every call inside the cooldown window
//!    fails instantly with [`ClientError::Unavailable`] without
//!    touching the socket, so the driver's fallback to the local store
//!    costs nothing.
//! 2. **A restarted server heals transparently.** Every operation here
//!    is idempotent (`GET`s are pure, `PUT`s are deduplicated by the
//!    server's store), so a request that fails on a previously-healthy
//!    connection is retried exactly once on a fresh connection before
//!    the breaker trips.
//!
//! # Concurrency contract
//!
//! A [`Client`] is `Send + Sync`; share one per process in an `Arc`.
//! The single underlying connection is behind a mutex — requests from
//! many threads serialize, which is the correct protocol behavior
//! (frames interleaved by two writers are garbage) and fine for the
//! driver, whose probe loop talks to the server at most a few times
//! per probe. Counters are atomics, readable at any time via
//! [`Client::stats`].

use crate::net::{Addr, Conn};
use crate::protocol::{read_frame, write_frame, Request, Response, Status};
use oraql_store::REF_SEP;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The server is (or was recently) unreachable; the circuit
    /// breaker is open. Callers should fall back to their local tier.
    Unavailable(String),
    /// The server answered with an error status.
    Remote(Status, String),
    /// The server answered bytes that do not decode as a response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Unavailable(m) => write!(f, "verdict server unavailable: {m}"),
            ClientError::Remote(s, m) if m.is_empty() => {
                write!(f, "verdict server error: {}", s.as_str())
            }
            ClientError::Remote(s, m) => write!(f, "verdict server error: {} ({m})", s.as_str()),
            ClientError::Protocol(m) => write!(f, "verdict server protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Live client counters (all monotone; relaxed loads/stores — they
/// feed the CLI summary, not synchronization).
#[derive(Debug, Default)]
struct Counters {
    lookups: AtomicU64,
    hits: AtomicU64,
    appends: AtomicU64,
    io_errors: AtomicU64,
    fast_fails: AtomicU64,
    connects: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
}

/// A plain-value copy of a client's counters at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// `GET` requests issued (dec + exe + refs).
    pub lookups: u64,
    /// `GET`s the server answered with a record.
    pub hits: u64,
    /// `PUT` requests issued.
    pub appends: u64,
    /// Requests that died on a real socket/protocol error.
    pub io_errors: u64,
    /// Requests refused instantly by the open circuit breaker.
    pub fast_fails: u64,
    /// Successful (re)connects.
    pub connects: u64,
    /// Request bytes written.
    pub bytes_out: u64,
    /// Response bytes read.
    pub bytes_in: u64,
}

impl std::fmt::Display for ClientStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} lookups, {} appends, {} errors, {} fast-fails, {} connects",
            self.hits, self.lookups, self.appends, self.io_errors, self.fast_fails, self.connects
        )
    }
}

/// Connection state behind the client's mutex.
#[derive(Default)]
struct Link {
    conn: Option<Conn>,
    /// While `Some` and in the future, the breaker is open: fail fast.
    down_until: Option<Instant>,
}

/// A blocking verdict-server client with timeouts and a circuit
/// breaker. See the module docs for the full contract.
pub struct Client {
    addr: Addr,
    addr_str: String,
    timeout: Duration,
    cooldown: Duration,
    link: Mutex<Link>,
    counters: Counters,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr_str)
            .field("stats", &self.stats())
            .finish()
    }
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Client {
    /// Default per-request socket timeout.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(2);
    /// Default circuit-breaker cooldown after a failure.
    pub const DEFAULT_COOLDOWN: Duration = Duration::from_millis(250);

    /// Builds a client for `addr` (see [`Addr::parse`] for the
    /// grammar). No I/O happens here — the first request dials.
    pub fn new(addr: &str) -> Client {
        Client::with_timeouts(addr, Self::DEFAULT_TIMEOUT, Self::DEFAULT_COOLDOWN)
    }

    /// [`Client::new`] with explicit socket timeout and breaker
    /// cooldown (tests use tiny cooldowns to exercise recovery).
    pub fn with_timeouts(addr: &str, timeout: Duration, cooldown: Duration) -> Client {
        Client {
            addr: Addr::parse(addr),
            addr_str: addr.to_string(),
            timeout,
            cooldown,
            link: Mutex::new(Link::default()),
            counters: Counters::default(),
        }
    }

    /// The address string this client dials.
    pub fn addr(&self) -> &str {
        &self.addr_str
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ClientStats {
        let r = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ClientStats {
            lookups: r(&self.counters.lookups),
            hits: r(&self.counters.hits),
            appends: r(&self.counters.appends),
            io_errors: r(&self.counters.io_errors),
            fast_fails: r(&self.counters.fast_fails),
            connects: r(&self.counters.connects),
            bytes_out: r(&self.counters.bytes_out),
            bytes_in: r(&self.counters.bytes_in),
        }
    }

    /// One request/response exchange, with the breaker and the
    /// retry-once-on-stale-connection policy described in the module
    /// docs. Holds the connection mutex for the whole exchange.
    fn request(&self, req: &Request) -> Result<Response, ClientError> {
        let mut link = lock_ignore_poison(&self.link);
        if let Some(until) = link.down_until {
            if Instant::now() < until {
                self.counters.fast_fails.fetch_add(1, Ordering::Relaxed);
                return Err(ClientError::Unavailable("in cooldown".into()));
            }
            link.down_until = None;
        }
        let frame = req.encode();
        // First pass may reuse a connection left by an earlier request;
        // only a *reused* connection earns a retry (the server may have
        // restarted since), a fresh dial's failure is definitive.
        let reused = link.conn.is_some();
        let mut attempt = 0;
        loop {
            attempt += 1;
            let res = self.exchange(&mut link, &frame, req.op());
            match res {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    link.conn = None;
                    if reused && attempt == 1 {
                        continue; // one fresh-connection retry
                    }
                    self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                    link.down_until = Some(Instant::now() + self.cooldown);
                    return Err(ClientError::Unavailable(e));
                }
            }
        }
    }

    /// Sends `frame` and reads one response on the cached connection,
    /// dialing first if needed. Errors are stringified for the caller
    /// to wrap (every failure class here means "server unreachable or
    /// incoherent", which the driver treats uniformly).
    fn exchange(
        &self,
        link: &mut Link,
        frame: &[u8],
        op: crate::protocol::Op,
    ) -> Result<Response, String> {
        if link.conn.is_none() {
            let conn = Conn::connect(&self.addr, self.timeout).map_err(|e| e.to_string())?;
            conn.set_read_timeout(Some(self.timeout))
                .map_err(|e| e.to_string())?;
            conn.set_write_timeout(Some(self.timeout))
                .map_err(|e| e.to_string())?;
            self.counters.connects.fetch_add(1, Ordering::Relaxed);
            link.conn = Some(conn);
        }
        // Checked is_none() above; keep the borrow local to this call.
        let Some(conn) = link.conn.as_mut() else {
            return Err("no connection".into());
        };
        write_frame(conn, frame).map_err(|e| e.to_string())?;
        self.counters
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        let payload = match read_frame(conn).map_err(|e| e.to_string())? {
            Some(p) => p,
            None => return Err("server closed the connection".into()),
        };
        self.counters
            .bytes_in
            .fetch_add((4 + payload.len()) as u64, Ordering::Relaxed);
        Response::decode(op, &payload)
    }

    fn remote_err(resp: Response) -> ClientError {
        match resp {
            Response::Err(status, msg) => ClientError::Remote(status, msg),
            other => ClientError::Protocol(format!("unexpected response {other:?}")),
        }
    }

    /// Liveness check.
    pub fn ping(&self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(Self::remote_err(other)),
        }
    }

    fn get_verdict(&self, req: Request) -> Result<Option<(bool, u64)>, ClientError> {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        match self.request(&req)? {
            Response::Verdict { pass, unique } => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some((pass, unique)))
            }
            Response::NotFound => Ok(None),
            other => Err(Self::remote_err(other)),
        }
    }

    /// Looks up a decisions-digest verdict.
    pub fn get_dec(&self, key: u64) -> Result<Option<(bool, u64)>, ClientError> {
        self.get_verdict(Request::GetDec { key })
    }

    /// Looks up an executable-hash verdict.
    pub fn get_exe(&self, key: u64) -> Result<Option<(bool, u64)>, ClientError> {
        self.get_verdict(Request::GetExe { key })
    }

    fn put(&self, req: Request) -> Result<(), ClientError> {
        self.counters.appends.fetch_add(1, Ordering::Relaxed);
        match self.request(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::remote_err(other)),
        }
    }

    /// Appends a decisions-digest verdict.
    pub fn put_dec(&self, key: u64, pass: bool, unique: u64) -> Result<(), ClientError> {
        self.put(Request::PutDec { key, pass, unique })
    }

    /// Appends an executable-hash verdict.
    pub fn put_exe(&self, key: u64, pass: bool, unique: u64) -> Result<(), ClientError> {
        self.put(Request::PutExe { key, pass, unique })
    }

    /// Looks up the reference outputs stored for a case salt.
    pub fn get_refs(&self, salt: u64) -> Result<Option<Vec<String>>, ClientError> {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        match self.request(&Request::GetRefs { salt })? {
            Response::Text(joined) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(joined.split(REF_SEP).map(str::to_owned).collect()))
            }
            Response::NotFound => Ok(None),
            other => Err(Self::remote_err(other)),
        }
    }

    /// Appends the accepted reference outputs for a case salt.
    pub fn put_refs(&self, salt: u64, outputs: &[String]) -> Result<(), ClientError> {
        self.put(Request::PutRefs {
            salt,
            refs: outputs.join(&REF_SEP.to_string()),
        })
    }

    /// Fetches the server's `STATS` text.
    pub fn server_stats(&self) -> Result<String, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Text(t) => Ok(t),
            other => Err(Self::remote_err(other)),
        }
    }

    /// Fetches the server's `METRICS` text exposition (the daemon
    /// process's metrics registry, Prometheus-style `name value`
    /// lines; parse with `oraql_obs::Snapshot::parse`).
    pub fn server_metrics(&self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Text(t) => Ok(t),
            other => Err(Self::remote_err(other)),
        }
    }

    /// Forces a group fsync of every dirty shard.
    pub fn sync(&self) -> Result<(), ClientError> {
        match self.request(&Request::Sync)? {
            Response::Ok => Ok(()),
            other => Err(Self::remote_err(other)),
        }
    }

    /// Compacts every shard journal; returns the per-shard summary.
    pub fn server_compact(&self) -> Result<String, ClientError> {
        match self.request(&Request::Compact)? {
            Response::Text(t) => Ok(t),
            other => Err(Self::remote_err(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("oraql_client_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn breaker_fast_fails_then_recovers() {
        let dir = scratch("breaker");
        let cfg = ServerConfig::new(&dir);
        let server = Server::start(&cfg, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        // Generous cooldown so the breaker is observably open.
        let client = Client::with_timeouts(
            &addr,
            Duration::from_millis(500),
            Duration::from_millis(200),
        );
        client.put_dec(1, true, 1).unwrap();
        server.shutdown().unwrap();
        // First call after the server died: a real error trips the breaker.
        assert!(matches!(
            client.get_dec(1),
            Err(ClientError::Unavailable(_))
        ));
        let after_trip = client.stats().io_errors;
        assert!(after_trip >= 1);
        // Inside the cooldown: fail-fast, no new socket error.
        assert!(matches!(
            client.get_dec(1),
            Err(ClientError::Unavailable(_))
        ));
        assert_eq!(client.stats().io_errors, after_trip);
        assert!(client.stats().fast_fails >= 1);
        // Restart on the same port and wait out the cooldown: heals.
        let port_cfg = ServerConfig::new(&dir);
        let server = Server::start(&port_cfg, &addr).unwrap();
        std::thread::sleep(Duration::from_millis(250));
        assert_eq!(client.get_dec(1).unwrap(), Some((true, 1)));
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_once_survives_server_restart() {
        let dir = scratch("retry");
        let cfg = ServerConfig::new(&dir);
        let server = Server::start(&cfg, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let client = Client::new(&addr);
        client.put_dec(5, true, 5).unwrap();
        // Bounce the server; the client's cached connection is now
        // stale, but the next request must succeed via the one-shot
        // reconnect, not error.
        server.shutdown().unwrap();
        let server = Server::start(&cfg, &addr).unwrap();
        assert_eq!(client.get_dec(5).unwrap(), Some((true, 5)));
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_clients_share_one_handle() {
        let dir = scratch("shared");
        let server = Server::start(&ServerConfig::new(&dir), "127.0.0.1:0").unwrap();
        let client = std::sync::Arc::new(Client::new(&server.addr()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = std::sync::Arc::clone(&client);
                s.spawn(move || {
                    for k in 0..25u64 {
                        let key = t * 100 + k;
                        c.put_dec(key, true, key).unwrap();
                        assert_eq!(c.get_dec(key).unwrap(), Some((true, key)));
                    }
                });
            }
        });
        assert_eq!(client.stats().appends, 100);
        assert_eq!(client.stats().hits, 100);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
