//! Regenerates the paper's **Fig. 4** (the main alias-query statistics
//! table) and **Fig. 5** (software versions), then Criterion-times the
//! probing driver on two representative configurations.
//!
//! Columns, as in the paper: # optimistic queries (unique / cached),
//! # pessimistic queries (unique / cached), # no-alias results
//! (original / ORAQL / Δ).

use criterion::{criterion_group, criterion_main, Criterion};
use oraql::report::summarize_trace_by_case;
use oraql::trace::read_trace;
use oraql::{Driver, DriverOptions};
use oraql_bench::{pct, print_table, run_all_configs, trace_artifact};
use oraql_workloads::find_case;

fn print_fig5() {
    print_table(
        "Fig. 5 — software versions (substrate crates standing in for the paper's stack)",
        &["component", "stands in for", "version"],
        &[
            vec![
                "oraql-ir".into(),
                "LLVM IR (git ea7be7e)".into(),
                env!("CARGO_PKG_VERSION").into(),
            ],
            vec![
                "oraql-analysis".into(),
                "LLVM AA stack".into(),
                env!("CARGO_PKG_VERSION").into(),
            ],
            vec![
                "oraql-passes".into(),
                "LLVM O3 pipeline".into(),
                env!("CARGO_PKG_VERSION").into(),
            ],
            vec![
                "oraql-vm (device model)".into(),
                "CUDA 11.4.0 / A100".into(),
                env!("CARGO_PKG_VERSION").into(),
            ],
            vec![
                "oraql-workloads".into(),
                "proxy apps + Kokkos 3.5.0 / Flang".into(),
                env!("CARGO_PKG_VERSION").into(),
            ],
        ],
    );
}

fn print_fig4() {
    let results = run_all_configs();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(info, r)| {
            vec![
                info.benchmark.to_string(),
                info.model.to_string(),
                info.source_files.to_string(),
                r.oraql.unique_optimistic.to_string(),
                r.oraql.cached_optimistic.to_string(),
                r.oraql.unique_pessimistic.to_string(),
                r.oraql.cached_pessimistic.to_string(),
                r.no_alias_original.to_string(),
                r.no_alias_oraql.to_string(),
                pct(r.no_alias_original, r.no_alias_oraql),
            ]
        })
        .collect();
    print_table(
        "Fig. 4 — alias query statistics for all benchmarks and configurations",
        &[
            "Benchmark",
            "Programming Model",
            "Source Files",
            "Opt uniq",
            "Opt cached",
            "Pess uniq",
            "Pess cached",
            "No-Alias orig",
            "No-Alias ORAQL",
            "Δ",
        ],
        &rows,
    );
    // Probing-effort appendix (not in the paper's table but reported in
    // its text: tests run, cache hits, deduced tests). Recomputed from
    // the probe-trace artifact the suite run just wrote — the same
    // JSONL file feeds every effort table — rather than from the
    // driver's ad-hoc counters. An executable-hash cache hit still
    // compiles (to hash the executable), so compiles = executed +
    // exe-cache events.
    let trace = read_trace(trace_artifact()).expect("read trace artifact");
    let by_case = summarize_trace_by_case(&trace);
    let eff: Vec<Vec<String>> = results
        .iter()
        .map(|(info, r)| {
            let t = by_case
                .iter()
                .find(|(case, _)| case == info.name)
                .map(|(_, t)| *t)
                .unwrap_or_default();
            vec![
                info.name.to_string(),
                r.fully_optimistic.to_string(),
                (t.executed + t.exe_cache_hits).to_string(),
                t.executed.to_string(),
                t.exe_cache_hits.to_string(),
                t.deduced.to_string(),
            ]
        })
        .collect();
    print_table(
        "Probing effort per configuration (from the probe-trace artifact)",
        &[
            "config",
            "fully optimistic",
            "compiles",
            "tests",
            "cached",
            "deduced",
        ],
        &eff,
    );
}

fn bench_driver(c: &mut Criterion) {
    print_fig5();
    print_fig4();

    let mut g = c.benchmark_group("driver");
    g.sample_size(10);
    for name in ["testsnap", "xsbench"] {
        g.bench_function(format!("full-workflow/{name}"), |b| {
            b.iter(|| {
                let case = find_case(name).unwrap();
                Driver::run(&case, DriverOptions::default()).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_driver);
criterion_main!(benches);
