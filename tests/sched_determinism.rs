//! Determinism gates for the probe scheduler v2 (speculation DAG +
//! cross-case dedup) over the full 16-configuration workload suite:
//!
//! * `--jobs 1` is byte-identical at any speculation depth — same
//!   decisions, same effort counters, same probe trace (the knobs must
//!   be completely inert without a pool);
//! * at depth 0 every parallel job count replays the same per-case
//!   probe sequence, so the Fig. 2 effort tables agree between
//!   `--jobs 2` and `--jobs 8` field-for-field (timing excluded);
//! * at any (jobs, depth) combination the *decisions* agree with the
//!   sequential run in canonical form, and the optimized programs
//!   produce identical verified output;
//! * chaos: the suite under the `scripts/chaos.sh` seed matrix still
//!   completes with every case verified at `--jobs 4 --speculate-depth
//!   3`, and an always-failing probe environment degrades to
//!   quarantined may-alias — never to unverified output.
//!
//! The cross-case content tier keys probes by case-independent module
//! text, so these gates also pin that the sixteen configurations build
//! pairwise-distinct modules (if two became identical, the depth-0
//! tables could legitimately diverge and this suite must be revisited).

use std::collections::BTreeSet;
use std::sync::Arc;

use oraql::report::{summarize_trace_by_case, TraceSummary};
use oraql::trace::{ProbeEvent, TraceSink};
use oraql::{
    run_suite, DriverOptions, DriverResult, FaultInjector, FaultPlan, FaultSite, TestCase,
};
use oraql_faults::Rate;
use oraql_workloads as workloads;

/// One suite leg: every case, shared caches/pool per `jobs`, with a
/// trace attached. Panics if any case fails.
fn run_leg(
    jobs: usize,
    depth: u32,
    faults: Option<FaultPlan>,
) -> (Vec<DriverResult>, Vec<ProbeEvent>) {
    let sink = TraceSink::in_memory();
    let opts = DriverOptions {
        jobs,
        speculate_depth: depth,
        trace: Some(sink.clone()),
        faults: faults.map(|p| {
            oraql_faults::quiet_injected_panics();
            Arc::new(FaultInjector::new(p))
        }),
        ..Default::default()
    };
    let results: Vec<DriverResult> = run_suite(&workloads::all_cases(), &opts)
        .into_iter()
        .map(|r| r.expect("suite case failed"))
        .collect();
    (results, sink.events())
}

/// The schedule-independent view of one probe event (wall time is the
/// only field a scheduler may legitimately change at `--jobs 1`).
fn event_key(e: &ProbeEvent) -> (String, u64, u64, &'static str, bool, u64, bool) {
    (
        e.case.clone(),
        e.seq,
        e.digest,
        e.kind.as_str(),
        e.pass,
        e.unique,
        e.speculative,
    )
}

/// Per-case Fig. 2 effort tables with the timing column cleared.
fn fig2_counts(events: &[ProbeEvent]) -> Vec<(String, TraceSummary)> {
    summarize_trace_by_case(events)
        .into_iter()
        .map(|(name, mut t)| {
            t.wall_micros = 0;
            (name, t)
        })
        .collect()
}

fn decisions(results: &[DriverResult]) -> Vec<String> {
    results.iter().map(|r| r.decisions.render()).collect()
}

fn canonical(results: &[DriverResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| r.decisions.canonical().render())
        .collect()
}

fn stdouts(results: &[DriverResult]) -> Vec<&str> {
    results
        .iter()
        .map(|r| r.final_run.stdout.as_str())
        .collect()
}

/// The cross-case content tier (and the depth-0 table identity below)
/// relies on the sixteen configurations building distinct programs.
#[test]
fn workload_modules_are_pairwise_distinct() {
    let cases: Vec<TestCase> = workloads::all_cases();
    assert_eq!(cases.len(), 16);
    let texts: BTreeSet<String> = cases
        .iter()
        .map(|c| oraql_ir::printer::module_str(&(c.build)()))
        .collect();
    assert_eq!(
        texts.len(),
        cases.len(),
        "two configs build identical modules"
    );
}

/// `--jobs 1` ignores the scheduler knobs entirely: depth 0, 1, and 3
/// replay the seed driver's probe sequence byte-for-byte.
#[test]
fn jobs1_is_byte_identical_at_any_depth() {
    let (r0, e0) = run_leg(1, 0, None);
    let keys0: Vec<_> = e0.iter().map(event_key).collect();
    for depth in [1u32, 3] {
        let (r, e) = run_leg(1, depth, None);
        assert_eq!(decisions(&r0), decisions(&r), "depth {depth}: decisions");
        assert_eq!(stdouts(&r0), stdouts(&r), "depth {depth}: output");
        for (a, b) in r0.iter().zip(&r) {
            assert_eq!(a.effort, b.effort, "depth {depth}: effort for {}", a.name);
        }
        let keys: Vec<_> = e.iter().map(event_key).collect();
        assert_eq!(keys0, keys, "depth {depth}: probe trace diverged");
    }
}

/// Depth 0 with a pool: cases share caches but every per-case probe
/// path is sequential, so `--jobs 2` and `--jobs 8` agree on decisions
/// *and* on the per-case Fig. 2 effort tables, field for field.
#[test]
fn depth0_fig2_tables_agree_across_job_counts() {
    let (r2, e2) = run_leg(2, 0, None);
    let (r8, e8) = run_leg(8, 0, None);
    assert_eq!(decisions(&r2), decisions(&r8));
    assert_eq!(stdouts(&r2), stdouts(&r8));
    assert_eq!(fig2_counts(&e2), fig2_counts(&e8));
}

/// Every (jobs, depth) combination converges on the sequential
/// decisions (canonical form) and the same verified program output.
#[test]
fn all_legs_agree_with_sequential_decisions() {
    let (seq, _) = run_leg(1, 0, None);
    let want_dec = canonical(&seq);
    let want_out: Vec<String> = seq.iter().map(|r| r.final_run.stdout.clone()).collect();
    for jobs in [2usize, 8] {
        for depth in [0u32, 1, 3] {
            let (r, _) = run_leg(jobs, depth, None);
            assert_eq!(want_dec, canonical(&r), "jobs {jobs} depth {depth}");
            assert_eq!(
                want_out,
                r.iter()
                    .map(|x| x.final_run.stdout.clone())
                    .collect::<Vec<_>>(),
                "jobs {jobs} depth {depth}"
            );
            // (Each case's final output was already verified against
            // its baseline inside the driver — a mismatch would have
            // surfaced as a `FinalBroken` error above.)
        }
    }
}

/// The `scripts/chaos.sh` seed matrix at full speculation: the suite
/// completes with every case verified — faults degrade probes, never
/// correctness.
#[test]
fn chaos_seeds_complete_verified_under_deep_speculation() {
    for seed in [1u64, 42, 1337] {
        let plan = FaultPlan::uniform(seed, 1, 24);
        // `run_leg` unwraps every case: completion means each final
        // program was compiled and verified against its baseline
        // despite the injected faults.
        let (r, _) = run_leg(4, 3, Some(plan));
        assert_eq!(r.len(), 16, "seed {seed}");
    }
}

/// An always-failing probe environment quarantines to may-alias: no
/// probe verdict can be proven, so nothing is optimistically kept, and
/// the final programs still verify.
#[test]
fn total_probe_failure_degrades_to_may_alias() {
    let plan = FaultPlan::quiet(3).with_rate(FaultSite::CompilePanic, Rate::always());
    oraql_faults::quiet_injected_panics();
    let opts = DriverOptions {
        jobs: 4,
        speculate_depth: 3,
        max_tests: 12,
        probe_retries: 1,
        faults: Some(Arc::new(FaultInjector::new(plan))),
        ..Default::default()
    };
    // A subset keeps the budget-bounded walk quick; the gate is about
    // degradation, not coverage.
    let cases: Vec<TestCase> = ["testsnap_omp", "xsbench", "gridmini"]
        .iter()
        .map(|n| workloads::find_case(n).expect(n))
        .collect();
    let results = run_suite(&cases, &opts);
    let mut quarantined = 0u64;
    for r in results {
        let r = r.expect("case must complete despite total probe failure");
        assert!(!r.fully_optimistic, "{}", r.name);
        quarantined += r.failures.quarantined;
    }
    assert!(quarantined > 0, "quarantine never engaged");
}
