//! The `oraql-served` daemon and its operator CLI.
//!
//! ```text
//! oraql-served serve --dir DIR [--listen ADDR] [--shards N]
//!                    [--acceptors N] [--fsync-ms N]
//! oraql-served ping|stats|metrics|sync|compact ADDR
//! ```
//!
//! `serve` runs until killed; the journals are crash-safe, so SIGKILL
//! at any point loses at most one fsync interval of acked writes and
//! never corrupts recovery (see `docs/OPERATIONS.md`). The other
//! subcommands are thin client wrappers for operators and scripts.

use oraql_served::{Client, Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage:
  oraql-served serve --dir DIR [--listen ADDR] [--shards N] [--acceptors N] [--fsync-ms N]
  oraql-served ping ADDR
  oraql-served stats ADDR
  oraql-served metrics ADDR
  oraql-served sync ADDR
  oraql-served compact ADDR

ADDR is host:port for TCP or unix:<path> (or any string containing '/')
for a Unix-domain socket. Default listen address: 127.0.0.1:7437.";

fn fail(msg: &str) -> ExitCode {
    eprintln!("oraql-served: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "serve" => serve(&args[1..]),
        "ping" | "stats" | "metrics" | "sync" | "compact" => {
            let Some(addr) = args.get(1) else {
                return fail("missing ADDR (see --help)");
            };
            client_op(cmd, addr)
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown command `{other}` (see --help)")),
    }
}

fn serve(args: &[String]) -> ExitCode {
    let mut dir = None;
    let mut listen = "127.0.0.1:7437".to_string();
    let mut shards = 4usize;
    let mut acceptors = 2usize;
    let mut fsync_ms = 5u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed = match a.as_str() {
            "--dir" => val("--dir").map(|v| dir = Some(v)),
            "--listen" => val("--listen").map(|v| listen = v),
            "--shards" => val("--shards").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("bad --shards `{v}`"))
                    .map(|n| shards = n)
            }),
            "--acceptors" => val("--acceptors").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("bad --acceptors `{v}`"))
                    .map(|n| acceptors = n)
            }),
            "--fsync-ms" => val("--fsync-ms").and_then(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("bad --fsync-ms `{v}`"))
                    .map(|n| fsync_ms = n)
            }),
            other => Err(format!("unknown flag `{other}` (see --help)")),
        };
        if let Err(msg) = parsed {
            return fail(&msg);
        }
    }
    let Some(dir) = dir else {
        return fail("serve requires --dir DIR");
    };
    let config = ServerConfig {
        dir: dir.into(),
        shards,
        acceptors,
        fsync_interval: Duration::from_millis(fsync_ms),
    };
    let server = match Server::start(&config, &listen) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot start: {e}")),
    };
    println!(
        "oraql-served: listening on {}, {} shards in {}, {} records indexed",
        server.addr(),
        config.shards.max(1),
        config.dir.display(),
        server.indexed_records()
    );
    // Run until killed. The journals tolerate SIGKILL at any point;
    // a clean `kill` (SIGTERM) also just drops the process — recovery
    // on next start truncates at most one torn tail per shard.
    loop {
        std::thread::park();
    }
}

fn client_op(cmd: &str, addr: &str) -> ExitCode {
    let client = Client::new(addr);
    let res = match cmd {
        "ping" => client.ping().map(|()| "pong".to_string()),
        "stats" => client.server_stats(),
        "metrics" => client.server_metrics(),
        "sync" => client.sync().map(|()| "synced".to_string()),
        "compact" => client.server_compact(),
        _ => unreachable!("dispatched in main"),
    };
    match res {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}
