//! Umbrella crate: re-exports every ORAQL workspace crate.
pub use oraql;
pub use oraql_analysis as analysis;
pub use oraql_gen as gen;
pub use oraql_ir as ir;
pub use oraql_obs as obs;
pub use oraql_passes as passes;
pub use oraql_vm as vm;
pub use oraql_workloads as workloads;
