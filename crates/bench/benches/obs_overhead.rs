//! Observability overhead benchmark.
//!
//! The acceptance bar for the metrics/span instrumentation is that a
//! fully instrumented suite run (probe trace + span trace streaming to
//! files + metrics registry live) stays within **1.05×** of the
//! uninstrumented wall clock. This bench drives the full 16-config
//! workload suite both ways and records the ratio — and, while it has
//! the artifacts in hand, re-derives the in-run probe-trace summary
//! from the JSONL file alone, which must match byte-for-byte (the
//! `oraql trace --fig2` reproducibility criterion).
//!
//! Writes `$ORAQL_BENCH_OUT` (default `BENCH_obs.json`). Not a
//! criterion bench: the JSON artifact is the point, and each pass is a
//! full driver-suite run.

use std::time::Instant;

use oraql::report::render_trace_summary;
use oraql::trace::{read_trace, TraceSink};
use oraql::DriverOptions;
use oraql_obs::SpanSink;

fn suite_pass(opts: &DriverOptions, label: &str) -> f64 {
    let cases: Vec<_> = oraql_workloads::CASE_INFOS
        .iter()
        .map(|i| oraql_workloads::find_case(i.name).expect("registered"))
        .collect();
    let t = Instant::now();
    for r in oraql::run_suite(&cases, opts) {
        r.unwrap_or_else(|e| panic!("{label}: {e}"));
    }
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let out = std::env::var("ORAQL_BENCH_OUT").unwrap_or_else(|_| "BENCH_obs.json".into());
    let dir = std::env::temp_dir().join(format!("oraql_bench_obs_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let trace_path = dir.join("trace.jsonl");
    let spans_path = dir.join("spans.jsonl");
    let metrics_path = dir.join("metrics.prom");

    // Warm-up: touch every case once so lazy module construction and
    // allocator growth land outside the measured passes.
    let _ = suite_pass(&DriverOptions::default(), "warmup");

    let plain = suite_pass(&DriverOptions::default(), "plain");

    let sink = TraceSink::to_file(trace_path.to_str().unwrap()).expect("trace file");
    let spans = SpanSink::to_file(&spans_path).expect("spans file");
    let snap0 = oraql_obs::global().snapshot();
    let instrumented = suite_pass(
        &DriverOptions {
            trace: Some(sink.clone()),
            spans: Some(spans.clone()),
            ..Default::default()
        },
        "instrumented",
    );
    assert_eq!(sink.flush(), 0, "probe trace lines dropped");
    assert_eq!(spans.flush(), 0, "span lines dropped");
    let snap = oraql_obs::global().snapshot();
    std::fs::write(&metrics_path, snap.render()).expect("write exposition");

    // The analyzer's ground truth: the Fig. 2 table recomputed from the
    // JSONL artifact must equal the live in-run summary exactly.
    let live = render_trace_summary(&sink.events());
    let replayed = render_trace_summary(&read_trace(&trace_path).expect("read trace back"));
    assert_eq!(replayed, live, "fig2 replay drifted from live summary");
    // And the exposition must survive its own parser with the probes
    // the trace saw.
    let parsed = oraql_obs::Snapshot::parse(&std::fs::read_to_string(&metrics_path).unwrap())
        .expect("exposition parses");
    let probes = parsed
        .delta(&snap0)
        .counters
        .get("oraql_driver_probes_total")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        probes,
        sink.events().len() as u64,
        "registry and trace disagree on probe count"
    );

    let ratio = instrumented / plain;
    println!("uninstrumented suite: {plain:>9.1} ms");
    println!("instrumented suite:   {instrumented:>9.1} ms ({ratio:.3}x)");
    println!(
        "probes traced: {} | spans: {}",
        sink.events().len(),
        spans.events().len()
    );
    assert!(
        ratio <= 1.05,
        "instrumentation overhead {ratio:.3}x exceeds the 1.05x budget"
    );

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"cases_total\": {},\n  \
         \"plain_total_ms\": {plain:.2},\n  \
         \"instrumented_total_ms\": {instrumented:.2},\n  \
         \"overhead_ratio\": {ratio:.4},\n  \
         \"probes_traced\": {},\n  \
         \"spans_recorded\": {},\n  \
         \"fig2_replay_matches\": true\n}}\n",
        oraql_workloads::CASE_INFOS.len(),
        sink.events().len(),
        spans.events().len()
    );
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
    let _ = std::fs::remove_dir_all(&dir);
}
