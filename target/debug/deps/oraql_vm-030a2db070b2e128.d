/root/repo/target/debug/deps/oraql_vm-030a2db070b2e128.d: crates/vm/src/lib.rs crates/vm/src/decode.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/rtval.rs

/root/repo/target/debug/deps/oraql_vm-030a2db070b2e128: crates/vm/src/lib.rs crates/vm/src/decode.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/rtval.rs

crates/vm/src/lib.rs:
crates/vm/src/decode.rs:
crates/vm/src/interp.rs:
crates/vm/src/machine.rs:
crates/vm/src/memory.rs:
crates/vm/src/rtval.rs:
