//! Cross-run persistence via the `oraql-store` verdict journal: warm
//! runs must replay cold runs exactly, crash-truncated journals must
//! recover cleanly, and one store must be shareable across a whole
//! suite.

use std::path::PathBuf;
use std::sync::Arc;

use oraql::{Driver, DriverOptions, DriverResult, Store};
use oraql_workloads as workloads;

/// Fresh scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("oraql_store_it_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn journal(&self) -> PathBuf {
        self.0.join("verdicts.journal")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_with_store(name: &str, store: &Arc<Store>) -> DriverResult {
    let case = workloads::find_case(name).expect(name);
    Driver::run(
        &case,
        DriverOptions {
            store: Some(Arc::clone(store)),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn assert_same_result(name: &str, cold: &DriverResult, warm: &DriverResult) {
    assert_eq!(cold.decisions, warm.decisions, "{name}");
    assert_eq!(cold.fully_optimistic, warm.fully_optimistic, "{name}");
    assert_eq!(cold.oraql, warm.oraql, "{name}");
    assert_eq!(cold.no_alias_original, warm.no_alias_original, "{name}");
    assert_eq!(cold.no_alias_oraql, warm.no_alias_oraql, "{name}");
    assert_eq!(cold.final_run.stdout, warm.final_run.stdout, "{name}");
}

/// A warm run over a populated store answers every probe from the
/// persistent decisions-digest tier — no compiles, no tests — and
/// produces byte-identical driver results.
#[test]
fn warm_run_is_deterministic_and_compile_free() {
    let scratch = Scratch::new("warm");
    let store = Arc::new(Store::open(scratch.journal()).unwrap());
    let cold = run_with_store("testsnap_omp", &store);
    assert!(!cold.fully_optimistic);
    assert!(cold.effort.tests_run > 0);
    assert!(store.stats().appends > 0);
    store.sync().unwrap();
    drop(store);

    let store = Arc::new(Store::open(scratch.journal()).unwrap());
    assert!(store.stats().recovered > 0);
    let warm = run_with_store("testsnap_omp", &store);
    assert_same_result("testsnap_omp", &cold, &warm);
    assert_eq!(warm.effort.tests_run, 0, "{:?}", warm.effort);
    assert_eq!(warm.effort.compiles, 0, "{:?}", warm.effort);
    assert!(warm.effort.tests_dec_cached > 0, "{:?}", warm.effort);
    assert!(store.stats().dec_hits > 0, "{:?}", store.stats());
}

/// Kill-mid-write: truncating the journal at an arbitrary byte (as a
/// crash during an append would) must leave a store that reopens
/// cleanly, and a re-run over the partial store converges to the same
/// result as the original run.
#[test]
fn truncated_journal_recovers_and_rerun_converges() {
    let scratch = Scratch::new("torn");
    let store = Arc::new(Store::open(scratch.journal()).unwrap());
    let cold = run_with_store("xsbench", &store);
    store.sync().unwrap();
    drop(store);

    // Chop the file mid-record: everything after the torn point is a
    // crash artifact the next open must drop without panicking.
    let len = std::fs::metadata(scratch.journal()).unwrap().len();
    assert!(len > 40, "journal unexpectedly small: {len}");
    let torn = len - len / 3 - 7;
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(scratch.journal())
        .unwrap();
    f.set_len(torn).unwrap();
    drop(f);

    let store = Arc::new(Store::open(scratch.journal()).unwrap());
    let stats = store.stats();
    assert!(stats.dropped_torn > 0 || stats.recovered > 0, "{stats:?}");
    let rerun = run_with_store("xsbench", &store);
    assert_same_result("xsbench", &cold, &rerun);
    store.sync().unwrap();
    drop(store);

    // After the healing re-run the journal is whole again: a final warm
    // pass is fully answered from the store.
    let store = Arc::new(Store::open(scratch.journal()).unwrap());
    let warm = run_with_store("xsbench", &store);
    assert_same_result("xsbench", &cold, &warm);
    assert_eq!(warm.effort.tests_run, 0, "{:?}", warm.effort);
}

/// One store handle serves a whole suite of cases: keys are salted per
/// case, so verdicts never bleed between benchmarks, and the warm pass
/// over the same suite runs compile-free.
#[test]
fn one_store_serves_a_suite_of_cases() {
    let names = ["testsnap", "testsnap_omp", "gridmini"];
    let scratch = Scratch::new("suite");
    let store = Arc::new(Store::open(scratch.journal()).unwrap());
    let cold: Vec<DriverResult> = names.iter().map(|n| run_with_store(n, &store)).collect();
    store.sync().unwrap();
    drop(store);

    let store = Arc::new(Store::open(scratch.journal()).unwrap());
    for (name, cold) in names.iter().zip(&cold) {
        let warm = run_with_store(name, &store);
        assert_same_result(name, cold, &warm);
        assert_eq!(warm.effort.tests_run, 0, "{name}: {:?}", warm.effort);
    }
    assert!(store.stats().dec_hits > 0);
    assert_eq!(store.stats().misses, 0, "{:?}", store.stats());
}

/// Silent disk rot under a live suite: mid-suite, every frame starts
/// hitting the journal with one payload bit flipped. The writing
/// process never notices (in-memory maps are fine); the *next* open
/// must checksum-skip exactly the rotten records without panicking,
/// keep the clean ones, and a healing re-run converges.
#[test]
fn bitflipped_journal_mid_suite_heals_on_rerun() {
    let scratch = Scratch::new("bitflip");
    let store = Arc::new(Store::open(scratch.journal()).unwrap());
    let clean = run_with_store("testsnap", &store);

    let corruptor: oraql::store::WriteCorruptor = Arc::new(|frame: &mut Vec<u8>| {
        let last = frame.len() - 1;
        frame[last] ^= 0x10; // one payload bit: checksum must catch it
        true
    });
    store.set_write_corruptor(Some(corruptor));
    let rotten = run_with_store("gridmini", &store);
    let flipped = store.stats().injected_corrupt;
    assert!(flipped > 0, "{:?}", store.stats());
    store.set_write_corruptor(None);
    store.sync().unwrap();
    drop(store);

    let store = Arc::new(Store::open(scratch.journal()).unwrap());
    let stats = store.stats();
    assert_eq!(stats.dropped_corrupt, flipped, "{stats:?}");
    assert!(stats.recovered > 0, "{stats:?}");

    // The case recorded before the rot is still fully store-served…
    let warm = run_with_store("testsnap", &store);
    assert_same_result("testsnap", &clean, &warm);
    assert_eq!(warm.effort.tests_run, 0, "{:?}", warm.effort);

    // …and the rotten case recomputes its lost verdicts and converges.
    let healed = run_with_store("gridmini", &store);
    assert_same_result("gridmini", &rotten, &healed);
    // The rotten frames stay in the append-only journal until a
    // compaction scrubs them.
    store.compact().unwrap();
    store.sync().unwrap();
    drop(store);

    // After healing + compaction everything is clean and warm.
    let store = Arc::new(Store::open(scratch.journal()).unwrap());
    assert_eq!(store.stats().dropped_corrupt, 0, "{:?}", store.stats());
    let warm = run_with_store("gridmini", &store);
    assert_same_result("gridmini", &rotten, &warm);
    assert_eq!(warm.effort.tests_run, 0, "{:?}", warm.effort);
}

/// Compaction over a driver-populated journal preserves every verdict:
/// the warm run over the compacted store is still compile-free and
/// byte-identical.
#[test]
fn compaction_preserves_driver_verdicts() {
    let scratch = Scratch::new("compact");
    let store = Arc::new(Store::open(scratch.journal()).unwrap());
    let cold = run_with_store("testsnap_omp", &store);
    store.sync().unwrap();
    let before = std::fs::metadata(scratch.journal()).unwrap().len();
    let c = store.compact().unwrap();
    assert!(c.records > 0);
    assert!(c.bytes_after <= before);
    drop(store);

    let store = Arc::new(Store::open(scratch.journal()).unwrap());
    assert_eq!(store.stats().dropped_corrupt, 0);
    assert_eq!(store.stats().dropped_torn, 0);
    let warm = run_with_store("testsnap_omp", &store);
    assert_same_result("testsnap_omp", &cold, &warm);
    assert_eq!(warm.effort.tests_run, 0, "{:?}", warm.effort);
}
