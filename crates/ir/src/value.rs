//! SSA values and basic-block handles.

use crate::inst::InstId;
use crate::module::GlobalId;

/// Handle to a basic block within a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// An SSA value: either the result of an instruction, a function argument,
/// the address of a global, or a constant.
///
/// `Value` is `Copy` and order-independent hashable so it can serve as the
/// key of alias-query caches (the ORAQL pass caches on unordered pointer
/// pairs, see the paper's Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Result of instruction `InstId` in the current function.
    Inst(InstId),
    /// The `n`-th argument of the current function.
    Arg(u32),
    /// Address of a module-level global.
    Global(GlobalId),
    /// 64-bit integer constant (also used for the boolean constants 0/1).
    ConstInt(i64),
    /// 64-bit float constant, stored as raw bits so `Value` stays `Eq`.
    ConstFloat(u64),
    /// Undefined value (result of removed instructions, padding reads).
    Undef,
}

impl Value {
    /// Convenience constructor for a float constant.
    pub fn const_f64(x: f64) -> Value {
        Value::ConstFloat(x.to_bits())
    }

    /// Extracts a float constant, if this is one.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Value::ConstFloat(bits) => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// Extracts an integer constant, if this is one.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::ConstInt(i) => Some(i),
            _ => None,
        }
    }

    /// True for constants (and `Undef`), i.e. values with no defining
    /// instruction or argument slot.
    pub fn is_const(self) -> bool {
        matches!(
            self,
            Value::ConstInt(_) | Value::ConstFloat(_) | Value::Undef
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip() {
        let v = Value::const_f64(3.25);
        assert_eq!(v.as_f64(), Some(3.25));
        assert_eq!(v.as_int(), None);
        assert!(v.is_const());
    }

    #[test]
    fn int_extraction() {
        assert_eq!(Value::ConstInt(7).as_int(), Some(7));
        assert!(Value::Undef.is_const());
        assert!(!Value::Arg(0).is_const());
    }

    #[test]
    fn nan_constants_are_eq_by_bits() {
        let a = Value::const_f64(f64::NAN);
        let b = Value::const_f64(f64::NAN);
        assert_eq!(a, b); // same bit pattern
    }
}
