/root/repo/target/debug/deps/oraql_bench-a9a582371f587151.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/oraql_bench-a9a582371f587151: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
