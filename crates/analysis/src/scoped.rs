//! Scoped-noalias analysis: accesses carrying `noalias` scope lists do
//! not alias accesses that are members of those scopes (the IR-level
//! encoding `restrict` and OpenMP privatization lower to; LLVM's
//! `ScopedNoAliasAA`).

use crate::aa::{AliasAnalysis, QueryCtx};
use crate::location::{AliasResult, MemoryLocation};
use oraql_ir::meta::ScopeId;

/// Scope-list based no-alias reasoning.
#[derive(Default)]
pub struct ScopedNoAliasAA {
    answered: u64,
}

impl ScopedNoAliasAA {
    /// Creates the analysis.
    pub fn new() -> Self {
        Self::default()
    }
}

fn intersects(a: &[ScopeId], b: &[ScopeId]) -> bool {
    a.iter().any(|s| b.contains(s))
}

impl AliasAnalysis for ScopedNoAliasAA {
    fn name(&self) -> &'static str {
        "ScopedNoAliasAA"
    }

    fn alias(
        &mut self,
        _ctx: &QueryCtx<'_>,
        a: &MemoryLocation,
        b: &MemoryLocation,
    ) -> AliasResult {
        if intersects(&a.noalias, &b.scopes) || intersects(&b.noalias, &a.scopes) {
            self.answered += 1;
            return AliasResult::NoAlias;
        }
        AliasResult::MayAlias
    }

    fn stats(&self) -> Vec<(String, u64)> {
        vec![("answered".into(), self.answered)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::module::FunctionId;
    use oraql_ir::value::Value;
    use oraql_ir::Module;

    fn loc(scopes: Vec<ScopeId>, noalias: Vec<ScopeId>) -> MemoryLocation {
        let mut l = MemoryLocation::precise(Value::Arg(0), 8);
        l.scopes = scopes;
        l.noalias = noalias;
        l
    }

    #[test]
    fn noalias_scope_vs_member() {
        let m = Module::new("t");
        let ctx = QueryCtx {
            module: &m,
            func: FunctionId(0),
            pass: "t",
        };
        let mut aa = ScopedNoAliasAA::new();
        let s0 = ScopeId(0);
        // a declares it does not alias scope 0; b is a member of scope 0.
        assert_eq!(
            aa.alias(&ctx, &loc(vec![], vec![s0]), &loc(vec![s0], vec![])),
            AliasResult::NoAlias
        );
        // Symmetric.
        assert_eq!(
            aa.alias(&ctx, &loc(vec![s0], vec![]), &loc(vec![], vec![s0])),
            AliasResult::NoAlias
        );
    }

    #[test]
    fn unrelated_scopes_defer() {
        let m = Module::new("t");
        let ctx = QueryCtx {
            module: &m,
            func: FunctionId(0),
            pass: "t",
        };
        let mut aa = ScopedNoAliasAA::new();
        let s0 = ScopeId(0);
        let s1 = ScopeId(1);
        assert_eq!(
            aa.alias(&ctx, &loc(vec![], vec![s0]), &loc(vec![s1], vec![])),
            AliasResult::MayAlias
        );
        assert_eq!(
            aa.alias(&ctx, &loc(vec![], vec![]), &loc(vec![], vec![])),
            AliasResult::MayAlias
        );
    }
}
