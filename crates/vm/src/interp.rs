//! The IR interpreter: deterministic execution, output capture and the
//! cost model.

use crate::decode::{decode_function, DecodedFunction, Jump, Op, Opd, NO_EDGE};
use crate::memory::{MemError, Memory};
use crate::rtval::RtVal;
use oraql_ir::inst::{BinOp, CallKind, CastKind, CmpPred, FuncRef, GepOffset, Inst, InstId};
use oraql_ir::meta::Target;
use oraql_ir::module::{Function, FunctionId, Module};
use oraql_ir::types::Ty;
use oraql_ir::value::{BlockId, Value};
use std::rc::Rc;

/// Default fuel budget (instructions before
/// [`RuntimeError::FuelExhausted`]), shared by [`Interpreter::new`] and
/// the driver's test-case configuration so `run_main` and driver probes
/// execute under the same budget.
pub const DEFAULT_FUEL: u64 = 500_000_000;

/// Which execution engine the interpreter uses. Both engines are
/// observationally identical (stdout, [`ExecStats`], [`RuntimeError`]
/// classification); the pre-decoded engine is the default because every
/// ORAQL probe pays one interpreted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpMode {
    /// Execute pre-decoded basic blocks (see [`crate::decode`]).
    #[default]
    Decoded,
    /// Walk the IR instruction payloads directly (the reference
    /// semantics; kept for differential testing).
    TreeWalk,
}

impl InterpMode {
    /// Parses a mode name as accepted by `--interp` and the `interp`
    /// config key.
    pub fn parse(s: &str) -> Option<InterpMode> {
        match s {
            "decoded" => Some(InterpMode::Decoded),
            "tree" | "treewalk" | "tree-walk" => Some(InterpMode::TreeWalk),
            _ => None,
        }
    }
}

impl std::fmt::Display for InterpMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InterpMode::Decoded => "decoded",
            InterpMode::TreeWalk => "tree",
        })
    }
}

/// Execution statistics — the `perf` / kernel-timer stand-in.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// IR instructions executed on the host (a vector op counts once,
    /// which is exactly why vectorization lowers this number).
    pub host_insts: u64,
    /// IR instructions executed in device-target functions.
    pub device_insts: u64,
    /// Modelled host cycles (see the cost table in [`inst_cost`]);
    /// parallel regions contribute their slowest thread.
    pub host_cycles: u64,
    /// Modelled device cycles (kernel launches contribute launch
    /// overhead plus work divided across the modelled SM parallelism).
    pub device_cycles: u64,
    /// Scalar/vector loads executed.
    pub loads: u64,
    /// Scalar/vector stores executed.
    pub stores: u64,
    /// Parallel regions + kernel launches executed.
    pub launches: u64,
}

impl ExecStats {
    /// Total executed instructions across host and device.
    pub fn total_insts(&self) -> u64 {
        self.host_insts + self.device_insts
    }
}

/// A runtime failure. Miscompiled programs (from wrong optimistic
/// answers) either produce different output or trap with one of these;
/// both count as verification failures for the ORAQL driver.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Memory fault.
    Mem(MemError),
    /// An instruction read a value that was never defined on this path.
    UndefRead(String),
    /// Integer division/remainder by zero.
    DivByZero,
    /// The fuel budget was exhausted (runaway loop in a miscompile).
    FuelExhausted,
    /// Structural problem (should not happen on verified IR).
    BadProgram(String),
    /// A chaos-testing fault injected via [`Interpreter::with_fault`].
    /// Never produced by real execution; the probing driver classifies
    /// it as a transient probe failure, not a verification verdict.
    Injected(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Mem(e) => write!(f, "memory error: {e}"),
            RuntimeError::UndefRead(s) => write!(f, "undefined value read: {s}"),
            RuntimeError::DivByZero => write!(f, "division by zero"),
            RuntimeError::FuelExhausted => write!(f, "fuel exhausted"),
            RuntimeError::BadProgram(s) => write!(f, "bad program: {s}"),
            RuntimeError::Injected(s) => write!(f, "injected fault: {s}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<MemError> for RuntimeError {
    fn from(e: MemError) -> Self {
        RuntimeError::Mem(e)
    }
}

/// A fault injected into one interpreter run (chaos testing; see the
/// `oraql-faults` crate). Both execution engines honor it identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmFault {
    /// [`Interpreter::run`] returns [`RuntimeError::Injected`] without
    /// executing anything.
    Trap,
    /// The fuel budget is capped at this value, so healthy long-running
    /// programs report [`RuntimeError::FuelExhausted`]. A program that
    /// completes anyway produced its genuine (trustworthy) output: fuel
    /// only bounds execution, it never changes semantics.
    FuelLie(u64),
}

/// Result of a complete program run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Captured output of all `print` instructions.
    pub stdout: String,
    /// Execution statistics.
    pub stats: ExecStats,
}

/// Modelled cycle cost of one executed instruction.
pub fn inst_cost(inst: &Inst) -> u64 {
    match inst {
        Inst::Load { .. } => 4,
        Inst::Store { .. } => 4,
        Inst::Gep { .. } => 1,
        Inst::Bin { op, .. } => match op {
            BinOp::FDiv => 12,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FMin | BinOp::FMax => 2,
            BinOp::Div | BinOp::Rem => 8,
            _ => 1,
        },
        Inst::Cmp { .. } | Inst::Select { .. } | Inst::Cast { .. } => 1,
        Inst::Br { .. } | Inst::CondBr { .. } => 1,
        Inst::Phi { .. } => 0,
        Inst::Call { .. } => 5,
        Inst::Ret { .. } => 1,
        Inst::Alloca { .. } => 1,
        Inst::Print { .. } => 2,
        Inst::Memcpy { .. } => 4, // plus a per-byte cost added inline
        Inst::Removed => 0,
    }
}

/// Fork/join overhead charged per thread of a parallel region.
const THREAD_OVERHEAD: u64 = 50;
/// Fixed overhead of a device kernel launch.
const LAUNCH_OVERHEAD: u64 = 1_000;
/// Modelled device parallelism (work items executing concurrently).
/// Deliberately small relative to our miniature launch sizes so kernel
/// time is throughput-dominated (as on a saturated GPU), not dominated
/// by the single slowest item.
const DEVICE_PARALLELISM: u64 = 16;

/// One observed memory access, for the dynamic-soundness harness: a
/// claim of `NoAlias` between two accesses of the same function
/// invocation is falsified if their recorded ranges overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Which function invocation (monotonic id across the run).
    pub frame: u64,
    /// The executing function.
    pub func: FunctionId,
    /// The load/store instruction.
    pub inst: InstId,
    /// Start address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// True for stores.
    pub is_store: bool,
}

/// The interpreter. One instance executes one program run.
pub struct Interpreter<'m> {
    m: &'m Module,
    mem: Memory,
    out: String,
    stats: ExecStats,
    fuel: u64,
    in_device: bool,
    trace: Option<Vec<AccessEvent>>,
    next_frame: u64,
    mode: InterpMode,
    /// Pending injected trap (chaos testing): checked once, at the next
    /// top-level [`Interpreter::run`].
    injected_trap: bool,
    /// Lazily built pre-decoded bodies, indexed by function id.
    decoded: Vec<Option<Rc<DecodedFunction>>>,
    /// Retired frame value arrays, reused by later decoded-mode calls
    /// (call-heavy programs otherwise pay an allocator round-trip per
    /// call).
    frame_pool: Vec<Vec<Option<RtVal>>>,
    /// Retired argument vectors, reused across calls, external calls
    /// and per-thread/per-item launch argument lists.
    arg_pool: Vec<Vec<RtVal>>,
    /// Fuel-refund events (faulted decoded segments unwound), published
    /// to the metrics registry at the end of each run. Kept out of
    /// [`ExecStats`] on purpose: the differential tests assert stats
    /// equality across engines, and refunds are an engine detail.
    fuel_refunds: u64,
    /// Instructions already published to the registry, so repeated
    /// runs on one interpreter flush deltas, not running totals.
    obs_flushed_insts: u64,
}

/// Registry handles for the VM, resolved once. The interpreter retires
/// ~50M insts/s on one core; per-instruction atomics would dominate, so
/// counts are accumulated in plain fields and flushed per run.
struct VmMetrics {
    insts: &'static oraql_obs::Counter,
    runs: &'static oraql_obs::Counter,
    refunds: &'static oraql_obs::Counter,
}

fn vm_metrics() -> &'static VmMetrics {
    static M: std::sync::OnceLock<VmMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let r = oraql_obs::global();
        VmMetrics {
            insts: r.counter("oraql_vm_insts_total"),
            runs: r.counter("oraql_vm_runs_total"),
            refunds: r.counter("oraql_vm_fuel_refunds_total"),
        }
    })
}

struct Frame {
    values: Vec<Option<RtVal>>,
    args: Vec<RtVal>,
}

/// Control transfer produced by one decoded op.
enum Flow {
    /// Fall through to the next op.
    Next,
    /// Branch to `block`, arriving via incoming edge `edge`.
    Jump { block: u32, edge: u32 },
    /// Return from the function.
    Ret(Option<RtVal>),
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter over `m` with the default fuel budget and
    /// the default (pre-decoded) execution mode.
    pub fn new(m: &'m Module) -> Self {
        Interpreter {
            mem: Memory::new(m),
            m,
            out: String::new(),
            stats: ExecStats::default(),
            fuel: DEFAULT_FUEL,
            in_device: false,
            trace: None,
            next_frame: 0,
            mode: InterpMode::default(),
            injected_trap: false,
            decoded: vec![None; m.funcs.len()],
            frame_pool: Vec::new(),
            arg_pool: Vec::new(),
            fuel_refunds: 0,
            obs_flushed_insts: 0,
        }
    }

    /// Selects the execution engine (see [`InterpMode`]).
    pub fn with_mode(mut self, mode: InterpMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables recording of every scalar load/store address (used by the
    /// dynamic alias-soundness tests). Costly; off by default.
    pub fn with_access_trace(mut self) -> Self {
        self.trace = Some(Vec::new());
        self
    }

    /// The recorded access events (empty unless tracing was enabled).
    pub fn access_trace(&self) -> &[AccessEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Overrides the fuel budget (instructions before
    /// [`RuntimeError::FuelExhausted`]).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Arms an injected fault for the next [`Interpreter::run`] (chaos
    /// testing; `None` is a no-op so call sites can thread an optional
    /// plan through unconditionally).
    pub fn with_fault(mut self, fault: Option<VmFault>) -> Self {
        match fault {
            Some(VmFault::Trap) => self.injected_trap = true,
            Some(VmFault::FuelLie(cap)) => self.fuel = self.fuel.min(cap),
            None => {}
        }
        self
    }

    /// Runs the module's `main` function (no arguments) and returns the
    /// captured output and statistics.
    pub fn run_main(m: &'m Module) -> Result<RunOutcome, RuntimeError> {
        let main = m
            .find_func("main")
            .ok_or_else(|| RuntimeError::BadProgram("no main function".into()))?;
        let mut interp = Interpreter::new(m);
        let res = interp.call(main, Vec::new());
        interp.flush_metrics();
        res?;
        Ok(RunOutcome {
            stdout: std::mem::take(&mut interp.out),
            stats: interp.stats,
        })
    }

    /// Runs `entry` with `args`, returning its return value.
    pub fn run(
        &mut self,
        entry: FunctionId,
        args: Vec<RtVal>,
    ) -> Result<Option<RtVal>, RuntimeError> {
        if self.injected_trap {
            self.injected_trap = false;
            return Err(RuntimeError::Injected("trap before execution".into()));
        }
        let res = self.call(entry, args);
        self.flush_metrics();
        res
    }

    /// Publishes this run's instruction delta, fuel refunds and the run
    /// itself to the metrics registry — one batch of atomics per run,
    /// nothing in the decode/dispatch hot loop.
    fn flush_metrics(&mut self) {
        let m = vm_metrics();
        let total = self.stats.total_insts();
        m.insts.add(total.saturating_sub(self.obs_flushed_insts));
        self.obs_flushed_insts = total;
        if self.fuel_refunds > 0 {
            m.refunds.add(self.fuel_refunds);
            self.fuel_refunds = 0;
        }
        m.runs.inc();
    }

    /// Output captured so far.
    pub fn stdout(&self) -> &str {
        &self.out
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    fn charge(&mut self, inst: &Inst) -> Result<(), RuntimeError> {
        if self.fuel == 0 {
            return Err(RuntimeError::FuelExhausted);
        }
        self.fuel -= 1;
        let c = inst_cost(inst);
        if self.in_device {
            self.stats.device_insts += 1;
            self.stats.device_cycles += c;
        } else {
            self.stats.host_insts += 1;
            self.stats.host_cycles += c;
        }
        match inst {
            Inst::Load { .. } => self.stats.loads += 1,
            Inst::Store { .. } => self.stats.stores += 1,
            _ => {}
        }
        Ok(())
    }

    fn call(&mut self, fid: FunctionId, args: Vec<RtVal>) -> Result<Option<RtVal>, RuntimeError> {
        let f = self.m.get_func(fid).ok_or_else(|| {
            RuntimeError::BadProgram(format!("call to missing function f{}", fid.0))
        })?;
        if args.len() != f.params.len() {
            return Err(RuntimeError::BadProgram(format!(
                "call to {} with {} args, expected {}",
                f.name,
                args.len(),
                f.params.len()
            )));
        }
        let was_device = self.in_device;
        if f.target == Target::Device {
            self.in_device = true;
        }
        let mark = self.mem.stack_mark();
        let result = match self.mode {
            InterpMode::TreeWalk => self.exec_function(fid, f, args),
            InterpMode::Decoded => {
                let dfn = self.decoded_fn(fid, f);
                self.exec_function_decoded(fid, dfn, args)
            }
        };
        self.mem.stack_release(mark);
        self.in_device = was_device;
        result
    }

    /// The cached pre-decoded body of `fid`, building it on first use.
    fn decoded_fn(&mut self, fid: FunctionId, f: &'m Function) -> Rc<DecodedFunction> {
        let idx = fid.0 as usize;
        if let Some(d) = self.decoded.get(idx).and_then(|o| o.as_ref()) {
            return Rc::clone(d);
        }
        if self.decoded.len() <= idx {
            self.decoded.resize(idx + 1, None);
        }
        let d = Rc::new(decode_function(self.m, f, self.mem.global_bases()));
        self.decoded[idx] = Some(Rc::clone(&d));
        d
    }

    fn eval(&self, frame: &Frame, v: Value) -> Result<RtVal, RuntimeError> {
        match v {
            Value::ConstInt(i) => Ok(RtVal::I(i)),
            Value::ConstFloat(bits) => Ok(RtVal::F(f64::from_bits(bits))),
            Value::Global(g) => self
                .mem
                .try_global_base(g.0 as usize)
                .map(RtVal::P)
                .ok_or_else(|| RuntimeError::BadProgram(format!("global @{} out of range", g.0))),
            Value::Arg(i) => frame
                .args
                .get(i as usize)
                .cloned()
                .ok_or_else(|| RuntimeError::BadProgram(format!("missing arg {i}"))),
            Value::Inst(id) => frame
                .values
                .get(id.0 as usize)
                .ok_or_else(|| {
                    RuntimeError::BadProgram(format!("instruction id %{} out of range", id.0))
                })?
                .clone()
                .ok_or_else(|| RuntimeError::UndefRead(format!("%{}", id.0))),
            Value::Undef => Err(RuntimeError::UndefRead("undef".into())),
        }
    }

    fn exec_function(
        &mut self,
        fid: FunctionId,
        f: &'m Function,
        args: Vec<RtVal>,
    ) -> Result<Option<RtVal>, RuntimeError> {
        let frame_id = self.next_frame;
        self.next_frame += 1;
        let mut frame = Frame {
            values: vec![None; f.insts.len()],
            args,
        };
        let mut block = Function::ENTRY;
        let mut pred: Option<BlockId> = None;
        loop {
            // Phase 1: evaluate all phis of this block against the
            // incoming edge (parallel-copy semantics).
            let insts = &f
                .blocks
                .get(block.0 as usize)
                .ok_or_else(|| RuntimeError::BadProgram(format!("missing block bb{}", block.0)))?
                .insts;
            let mut phi_vals: Vec<(InstId, RtVal)> = Vec::new();
            for &id in insts {
                match f.get_inst(id) {
                    None => {
                        return Err(RuntimeError::BadProgram(format!(
                            "instruction id %{} out of range",
                            id.0
                        )))
                    }
                    Some(Inst::Phi { incoming, .. }) => {
                        let from = pred
                            .ok_or_else(|| RuntimeError::BadProgram("phi in entry block".into()))?;
                        let (_, v) =
                            incoming.iter().find(|(bb, _)| *bb == from).ok_or_else(|| {
                                RuntimeError::BadProgram(format!(
                                    "phi %{} lacks edge from bb{}",
                                    id.0, from.0
                                ))
                            })?;
                        phi_vals.push((id, self.eval(&frame, *v)?));
                    }
                    Some(_) => break,
                }
            }
            for (id, v) in phi_vals {
                self.charge(f.inst(id))?;
                frame.values[id.0 as usize] = Some(v);
            }

            // Phase 2: execute the rest of the block.
            let mut next: Option<BlockId> = None;
            for &id in insts {
                let inst = f.get_inst(id).ok_or_else(|| {
                    RuntimeError::BadProgram(format!("instruction id %{} out of range", id.0))
                })?;
                if matches!(inst, Inst::Phi { .. }) {
                    continue;
                }
                self.charge(inst)?;
                match inst {
                    Inst::Phi { .. } => unreachable!(),
                    Inst::Removed => {
                        return Err(RuntimeError::BadProgram(format!(
                            "removed instruction %{} executed",
                            id.0
                        )))
                    }
                    Inst::Alloca { size, .. } => {
                        let addr = self.mem.alloca(*size)?;
                        frame.values[id.0 as usize] = Some(RtVal::P(addr));
                    }
                    Inst::Load { ptr, ty, .. } => {
                        let addr = self
                            .eval(&frame, *ptr)?
                            .as_p()
                            .map_err(RuntimeError::UndefRead)?;
                        if let Some(t) = &mut self.trace {
                            t.push(AccessEvent {
                                frame: frame_id,
                                func: fid,
                                inst: id,
                                addr,
                                size: ty.size(),
                                is_store: false,
                            });
                        }
                        let v = self.load_typed(addr, *ty)?;
                        frame.values[id.0 as usize] = Some(v);
                    }
                    Inst::Store { ptr, value, ty, .. } => {
                        let addr = self
                            .eval(&frame, *ptr)?
                            .as_p()
                            .map_err(RuntimeError::UndefRead)?;
                        if let Some(t) = &mut self.trace {
                            t.push(AccessEvent {
                                frame: frame_id,
                                func: fid,
                                inst: id,
                                addr,
                                size: ty.size(),
                                is_store: true,
                            });
                        }
                        let v = self.eval(&frame, *value)?;
                        self.store_typed(addr, *ty, &v)?;
                    }
                    Inst::Gep { base, offset } => {
                        let b = self
                            .eval(&frame, *base)?
                            .as_p()
                            .map_err(RuntimeError::UndefRead)?;
                        let off: i64 = match offset {
                            GepOffset::Const(c) => *c,
                            GepOffset::Scaled { index, scale, add } => {
                                let i = self
                                    .eval(&frame, *index)?
                                    .as_i()
                                    .map_err(RuntimeError::UndefRead)?;
                                i.wrapping_mul(*scale).wrapping_add(*add)
                            }
                        };
                        frame.values[id.0 as usize] =
                            Some(RtVal::P((b as i64).wrapping_add(off) as u64));
                    }
                    Inst::Bin { op, ty, lhs, rhs } => {
                        let a = self.eval(&frame, *lhs)?;
                        let b = self.eval(&frame, *rhs)?;
                        frame.values[id.0 as usize] = Some(exec_bin(*op, *ty, &a, &b)?);
                    }
                    Inst::Cmp {
                        pred: p, lhs, rhs, ..
                    } => {
                        let a = self.eval(&frame, *lhs)?;
                        let b = self.eval(&frame, *rhs)?;
                        frame.values[id.0 as usize] = Some(RtVal::I(exec_cmp(*p, &a, &b)? as i64));
                    }
                    Inst::Select { cond, t, f: fv, .. } => {
                        let c = self
                            .eval(&frame, *cond)?
                            .as_i()
                            .map_err(RuntimeError::UndefRead)?;
                        let v = if c != 0 {
                            self.eval(&frame, *t)?
                        } else {
                            self.eval(&frame, *fv)?
                        };
                        frame.values[id.0 as usize] = Some(v);
                    }
                    Inst::Cast { kind, val, to } => {
                        let v = self.eval(&frame, *val)?;
                        frame.values[id.0 as usize] = Some(exec_cast(*kind, &v, *to)?);
                    }
                    Inst::Call {
                        callee,
                        args: cargs,
                        kind,
                        ..
                    } => {
                        let mut vals = Vec::with_capacity(cargs.len());
                        for a in cargs {
                            vals.push(self.eval(&frame, *a)?);
                        }
                        let r = self.exec_call(*callee, *kind, vals)?;
                        frame.values[id.0 as usize] = r;
                    }
                    Inst::Print { fmt, args: pargs } => {
                        let fmt = self
                            .m
                            .strings
                            .try_resolve(*fmt)
                            .ok_or_else(|| {
                                RuntimeError::BadProgram(format!(
                                    "string id {} out of range",
                                    fmt.0
                                ))
                            })?
                            .to_owned();
                        let mut vals = Vec::with_capacity(pargs.len());
                        for a in pargs {
                            vals.push(self.eval(&frame, *a)?);
                        }
                        self.exec_print(&fmt, &vals);
                    }
                    Inst::Memcpy {
                        dst, src, bytes, ..
                    } => {
                        let d = self
                            .eval(&frame, *dst)?
                            .as_p()
                            .map_err(RuntimeError::UndefRead)?;
                        let s = self
                            .eval(&frame, *src)?
                            .as_p()
                            .map_err(RuntimeError::UndefRead)?;
                        let n = self
                            .eval(&frame, *bytes)?
                            .as_i()
                            .map_err(RuntimeError::UndefRead)?;
                        if n < 0 {
                            return Err(RuntimeError::BadProgram("negative memcpy size".into()));
                        }
                        // Per-byte cost.
                        let extra = n as u64 / 16;
                        if self.in_device {
                            self.stats.device_cycles += extra;
                        } else {
                            self.stats.host_cycles += extra;
                        }
                        self.mem.copy(d, s, n as u64)?;
                    }
                    Inst::Ret { val } => {
                        return match val {
                            Some(v) => Ok(Some(self.eval(&frame, *v)?)),
                            None => Ok(None),
                        };
                    }
                    Inst::Br { target } => {
                        next = Some(*target);
                        break;
                    }
                    Inst::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = self
                            .eval(&frame, *cond)?
                            .as_i()
                            .map_err(RuntimeError::UndefRead)?;
                        next = Some(if c != 0 { *then_bb } else { *else_bb });
                        break;
                    }
                }
            }
            match next {
                Some(b) => {
                    pred = Some(block);
                    block = b;
                }
                None => {
                    return Err(RuntimeError::BadProgram(format!(
                        "block bb{} of {} fell through without terminator",
                        block.0,
                        self.m.func(fid).name
                    )))
                }
            }
        }
    }

    /// Executes `fid`'s pre-decoded body. Must be observationally
    /// identical to [`Interpreter::exec_function`] — including the
    /// point at which fuel runs out and the `ExecStats` left behind by
    /// a failing run — which is what the batched-accounting refunds
    /// below are for.
    fn exec_function_decoded(
        &mut self,
        fid: FunctionId,
        dfn: Rc<DecodedFunction>,
        mut args: Vec<RtVal>,
    ) -> Result<Option<RtVal>, RuntimeError> {
        let frame_id = self.next_frame;
        self.next_frame += 1;
        let mut values: Vec<Option<RtVal>> = self.frame_pool.pop().unwrap_or_default();
        values.clear();
        values.resize(dfn.n_slots, None);
        let mut block: u32 = 0;
        let mut edge: u32 = NO_EDGE;
        let mut phi_buf: Vec<RtVal> = Vec::new();
        let msgs = &dfn.msgs;
        loop {
            let db = *dfn
                .blocks
                .get(block as usize)
                .ok_or_else(|| RuntimeError::BadProgram(format!("missing block bb{block}")))?;

            // Phase 1: parallel phi copies along the incoming edge.
            // Order matters for error equivalence: copies evaluate
            // first, then a bad id in the phi prefix faults, and only
            // then is the batch charged.
            let phis = &dfn.phi_slots[db.phis.0 as usize..db.phis.1 as usize];
            if !phis.is_empty() {
                if edge == NO_EDGE {
                    return Err(RuntimeError::BadProgram("phi in entry block".into()));
                }
                let e = &dfn.edges[(db.edges.0 + edge) as usize];
                let copies = &dfn.copies[e.copies.0 as usize..e.copies.1 as usize];
                phi_buf.clear();
                for (i, copy) in copies.iter().enumerate() {
                    match copy {
                        Some(o) => phi_buf.push(eval_opd(&values, &args, o, msgs)?),
                        None => {
                            return Err(RuntimeError::BadProgram(format!(
                                "phi %{} lacks edge from bb{}",
                                phis[i], e.pred
                            )))
                        }
                    }
                }
            }
            if let Some(mi) = db.scan_err {
                return Err(RuntimeError::BadProgram(msgs[mi as usize].to_string()));
            }
            if !phis.is_empty() {
                // Batched phi charge (phi cost is 0, so only fuel and
                // the instruction counter move; on exhaustion the
                // counter advances by the fuel actually consumed, as
                // per-instruction charging would).
                let n = phis.len() as u64;
                let counted = n.min(self.fuel);
                if self.in_device {
                    self.stats.device_insts += counted;
                } else {
                    self.stats.host_insts += counted;
                }
                if self.fuel < n {
                    self.fuel = 0;
                    return Err(RuntimeError::FuelExhausted);
                }
                self.fuel -= n;
                for (i, v) in phi_buf.drain(..).enumerate() {
                    values[phis[i] as usize] = Some(v);
                }
            }

            // Phase 2: the block body, segment by segment.
            let mut start = db.ops.0 as usize;
            let mut flow = Flow::Next;
            'body: for seg in &dfn.segs[db.segs.0 as usize..db.segs.1 as usize] {
                let end = seg.end as usize;
                let n = (end - start) as u64;
                if self.fuel >= n {
                    // Fast path: charge the whole segment up front.
                    self.fuel -= n;
                    if self.in_device {
                        self.stats.device_insts += n;
                        self.stats.device_cycles += seg.cycles;
                    } else {
                        self.stats.host_insts += n;
                        self.stats.host_cycles += seg.cycles;
                    }
                    self.stats.loads += seg.loads as u64;
                    self.stats.stores += seg.stores as u64;
                    for (k, op) in dfn.ops[start..end].iter().enumerate() {
                        match self.step_op(op, &mut values, &args, fid, frame_id, msgs) {
                            Ok(Flow::Next) => {}
                            Ok(f) => {
                                flow = f;
                                break 'body;
                            }
                            Err(e) => {
                                // Give back the charges for the ops
                                // that never ran (including the
                                // faulting op itself when the
                                // tree-walk faults before charging).
                                let j = start + k;
                                let from = match op {
                                    Op::Bad { charged: false, .. } => j,
                                    _ => j + 1,
                                };
                                self.refund(&dfn, from, end);
                                return Err(e);
                            }
                        }
                    }
                } else {
                    // Not enough fuel for the batch: per-op accounting
                    // so exhaustion strikes at the same instruction it
                    // would in the tree-walk.
                    for j in start..end {
                        let op = &dfn.ops[j];
                        if let Op::Bad {
                            msg,
                            charged: false,
                        } = op
                        {
                            return Err(RuntimeError::BadProgram(msgs[*msg as usize].to_string()));
                        }
                        if self.fuel == 0 {
                            return Err(RuntimeError::FuelExhausted);
                        }
                        self.fuel -= 1;
                        let c = dfn.costs[j] as u64;
                        if self.in_device {
                            self.stats.device_insts += 1;
                            self.stats.device_cycles += c;
                        } else {
                            self.stats.host_insts += 1;
                            self.stats.host_cycles += c;
                        }
                        self.stats.loads += op.is_load() as u64;
                        self.stats.stores += op.is_store() as u64;
                        match self.step_op(op, &mut values, &args, fid, frame_id, msgs)? {
                            Flow::Next => {}
                            f => {
                                flow = f;
                                break 'body;
                            }
                        }
                    }
                }
                start = end;
            }
            match flow {
                Flow::Ret(v) => {
                    // Failing paths drop these instead; a faulted run
                    // is over, so pooling only the success path is fine.
                    self.frame_pool.push(std::mem::take(&mut values));
                    args.clear();
                    self.arg_pool.push(std::mem::take(&mut args));
                    return Ok(v);
                }
                Flow::Jump { block: b, edge: e } => {
                    block = b;
                    edge = e;
                }
                Flow::Next => {
                    return Err(RuntimeError::BadProgram(format!(
                        "block bb{block} of {} fell through without terminator",
                        self.m.func(fid).name
                    )))
                }
            }
        }
    }

    /// Reverses the pre-charged accounting for ops `from..end` (indices
    /// into the function's op arena) of a segment whose execution
    /// faulted partway through.
    fn refund(&mut self, dfn: &DecodedFunction, from: usize, end: usize) {
        self.fuel_refunds += 1;
        let n = (end - from) as u64;
        let mut cycles = 0u64;
        let mut loads = 0u64;
        let mut stores = 0u64;
        for j in from..end {
            cycles += dfn.costs[j] as u64;
            loads += dfn.ops[j].is_load() as u64;
            stores += dfn.ops[j].is_store() as u64;
        }
        self.fuel += n;
        if self.in_device {
            self.stats.device_insts -= n;
            self.stats.device_cycles -= cycles;
        } else {
            self.stats.host_insts -= n;
            self.stats.host_cycles -= cycles;
        }
        self.stats.loads -= loads;
        self.stats.stores -= stores;
    }

    /// Executes one decoded op. Operand evaluation order mirrors the
    /// tree-walk arms exactly (it is observable through error
    /// precedence).
    ///
    /// Inlined into both segment loops: an outlined version pays a call
    /// plus a by-memory `Result<Flow>` return per executed op, which
    /// measurably caps interpretation throughput.
    #[inline(always)]
    fn step_op(
        &mut self,
        op: &Op,
        values: &mut [Option<RtVal>],
        args: &[RtVal],
        fid: FunctionId,
        frame_id: u64,
        msgs: &[Box<str>],
    ) -> Result<Flow, RuntimeError> {
        let jump_flow = |j: &Jump| -> Result<Flow, RuntimeError> {
            match j {
                Jump::To { block, edge } => Ok(Flow::Jump {
                    block: *block,
                    edge: *edge,
                }),
                Jump::Bad(mi) => Err(RuntimeError::BadProgram(msgs[*mi as usize].to_string())),
            }
        };
        match op {
            Op::Alloca { size, dst } => {
                let addr = self.mem.alloca(*size)?;
                values[*dst as usize] = Some(RtVal::P(addr));
            }
            Op::Load { ptr, ty, dst, id } => {
                let addr = eval_opd_p(values, args, ptr, msgs)?;
                if let Some(t) = &mut self.trace {
                    t.push(AccessEvent {
                        frame: frame_id,
                        func: fid,
                        inst: *id,
                        addr,
                        size: ty.size(),
                        is_store: false,
                    });
                }
                let v = self.load_typed(addr, *ty)?;
                values[*dst as usize] = Some(v);
            }
            Op::Store { ptr, val, ty, id } => {
                let addr = eval_opd_p(values, args, ptr, msgs)?;
                if let Some(t) = &mut self.trace {
                    t.push(AccessEvent {
                        frame: frame_id,
                        func: fid,
                        inst: *id,
                        addr,
                        size: ty.size(),
                        is_store: true,
                    });
                }
                let mut scratch = RtVal::I(0);
                let v = opd_ref(values, args, val, msgs, &mut scratch)?;
                self.store_typed(addr, *ty, v)?;
            }
            Op::GepConst { base, off, dst } => {
                let b = eval_opd_p(values, args, base, msgs)?;
                values[*dst as usize] = Some(RtVal::P((b as i64).wrapping_add(*off) as u64));
            }
            Op::GepScaled {
                base,
                index,
                scale,
                add,
                dst,
            } => {
                let b = eval_opd_p(values, args, base, msgs)?;
                let i = eval_opd_i(values, args, index, msgs)?;
                let off = i.wrapping_mul(*scale).wrapping_add(*add);
                values[*dst as usize] = Some(RtVal::P((b as i64).wrapping_add(off) as u64));
            }
            Op::Bin {
                op: bop,
                ty,
                lhs,
                rhs,
                dst,
            } => {
                let (mut sa, mut sb) = (RtVal::I(0), RtVal::I(0));
                let a = opd_ref(values, args, lhs, msgs, &mut sa)?;
                let b = opd_ref(values, args, rhs, msgs, &mut sb)?;
                let r = exec_bin(*bop, *ty, a, b)?;
                values[*dst as usize] = Some(r);
            }
            Op::Cmp {
                pred,
                lhs,
                rhs,
                dst,
            } => {
                let (mut sa, mut sb) = (RtVal::I(0), RtVal::I(0));
                let a = opd_ref(values, args, lhs, msgs, &mut sa)?;
                let b = opd_ref(values, args, rhs, msgs, &mut sb)?;
                let r = RtVal::I(exec_cmp(*pred, a, b)? as i64);
                values[*dst as usize] = Some(r);
            }
            Op::Select { cond, t, f, dst } => {
                let c = eval_opd_i(values, args, cond, msgs)?;
                let v = if c != 0 {
                    eval_opd(values, args, t, msgs)?
                } else {
                    eval_opd(values, args, f, msgs)?
                };
                values[*dst as usize] = Some(v);
            }
            Op::Cast { kind, val, to, dst } => {
                let mut scratch = RtVal::I(0);
                let v = opd_ref(values, args, val, msgs, &mut scratch)?;
                let r = exec_cast(*kind, v, *to)?;
                values[*dst as usize] = Some(r);
            }
            Op::Call {
                callee,
                kind,
                args: cargs,
                dst,
            } => {
                let mut vals = self.arg_pool.pop().unwrap_or_default();
                vals.clear();
                vals.reserve(cargs.len());
                for a in cargs.iter() {
                    vals.push(eval_opd(values, args, a, msgs)?);
                }
                let r = self.exec_call(*callee, *kind, vals)?;
                values[*dst as usize] = r;
            }
            Op::Print { fmt, args: pargs } => {
                let mut vals = self.arg_pool.pop().unwrap_or_default();
                vals.clear();
                vals.reserve(pargs.len());
                for a in pargs.iter() {
                    vals.push(eval_opd(values, args, a, msgs)?);
                }
                self.exec_print(fmt, &vals);
                vals.clear();
                self.arg_pool.push(vals);
            }
            Op::Memcpy { dst, src, bytes } => {
                let d = eval_opd_p(values, args, dst, msgs)?;
                let s = eval_opd_p(values, args, src, msgs)?;
                let n = eval_opd_i(values, args, bytes, msgs)?;
                if n < 0 {
                    return Err(RuntimeError::BadProgram("negative memcpy size".into()));
                }
                let extra = n as u64 / 16;
                if self.in_device {
                    self.stats.device_cycles += extra;
                } else {
                    self.stats.host_cycles += extra;
                }
                self.mem.copy(d, s, n as u64)?;
            }
            Op::Ret { val } => {
                return Ok(Flow::Ret(match val {
                    Some(o) => Some(eval_opd(values, args, o, msgs)?),
                    None => None,
                }))
            }
            Op::Br { jump } => return jump_flow(jump),
            Op::CondBr { cond, then_, else_ } => {
                let c = eval_opd_i(values, args, cond, msgs)?;
                return jump_flow(if c != 0 { then_ } else { else_ });
            }
            Op::Bad { msg, .. } => {
                return Err(RuntimeError::BadProgram(msgs[*msg as usize].to_string()));
            }
        }
        Ok(Flow::Next)
    }

    fn exec_call(
        &mut self,
        callee: FuncRef,
        kind: CallKind,
        mut args: Vec<RtVal>,
    ) -> Result<Option<RtVal>, RuntimeError> {
        match callee {
            FuncRef::External(sym) => {
                // The interner borrow lives as long as the module, so no
                // per-call name allocation is needed.
                let name = self.m.strings.try_resolve(sym).ok_or_else(|| {
                    RuntimeError::BadProgram(format!("string id {} out of range", sym.0))
                })?;
                // Math-library routines dominate real HPC kernels;
                // charge them realistic latencies so optimizations that
                // remove a load here and there do not dwarf the math.
                let extra = match name {
                    "sqrt" => 20,
                    "exp" | "log" | "sin" | "cos" => 40,
                    "pow" => 60,
                    _ => 0,
                };
                if self.in_device {
                    self.stats.device_cycles += extra;
                } else {
                    self.stats.host_cycles += extra;
                }
                let r = if name == "clock" {
                    // Reads the simulated cycle counter of the current
                    // target — the analogue of a benchmark's timer call.
                    // Its value legitimately differs between differently
                    // optimized executables, which is exactly why the
                    // verification harness needs ignore patterns.
                    Ok(Some(RtVal::I(self.cur_cycles() as i64)))
                } else {
                    exec_external(name, &args)
                };
                args.clear();
                self.arg_pool.push(args);
                r
            }
            FuncRef::Internal(fid) => match kind {
                CallKind::Plain => self.call(fid, args),
                CallKind::ParallelRegion { threads } => {
                    self.stats.launches += 1;
                    let base_cycles = self.cur_cycles();
                    let mut max_thread = 0u64;
                    let mut running = 0u64;
                    for tid in 0..threads {
                        let before = self.cur_cycles();
                        let mut targs = self.arg_pool.pop().unwrap_or_default();
                        targs.clear();
                        targs.reserve(args.len() + 1);
                        targs.push(RtVal::I(tid as i64));
                        targs.extend(args.iter().cloned());
                        self.call(fid, targs)?;
                        let spent = self.cur_cycles() - before;
                        max_thread = max_thread.max(spent);
                        running += spent;
                    }
                    // Threads run concurrently: wall time is the slowest
                    // thread plus fork/join overhead, not the sum.
                    let serial = self.cur_cycles() - base_cycles;
                    debug_assert_eq!(serial, running);
                    let parallel = max_thread + THREAD_OVERHEAD * threads as u64;
                    self.set_cur_cycles(base_cycles + parallel.min(serial.max(1)));
                    args.clear();
                    self.arg_pool.push(args);
                    Ok(None)
                }
                CallKind::KernelLaunch { items } => {
                    self.stats.launches += 1;
                    let before = self.stats.device_cycles;
                    let mut max_item = 0u64;
                    for gid in 0..items {
                        let b = self.stats.device_cycles;
                        let mut targs = self.arg_pool.pop().unwrap_or_default();
                        targs.clear();
                        targs.reserve(args.len() + 1);
                        targs.push(RtVal::I(gid as i64));
                        targs.extend(args.iter().cloned());
                        self.call(fid, targs)?;
                        max_item = max_item.max(self.stats.device_cycles - b);
                    }
                    let serial = self.stats.device_cycles - before;
                    // Items are spread across the modelled parallelism:
                    // the kernel takes the larger of its critical item
                    // and its throughput-limited total.
                    let lanes = DEVICE_PARALLELISM.min(items.max(1) as u64);
                    let parallel = LAUNCH_OVERHEAD + max_item.max(serial / lanes);
                    self.stats.device_cycles = before + parallel;
                    args.clear();
                    self.arg_pool.push(args);
                    Ok(None)
                }
            },
        }
    }

    fn cur_cycles(&self) -> u64 {
        if self.in_device {
            self.stats.device_cycles
        } else {
            self.stats.host_cycles
        }
    }

    fn set_cur_cycles(&mut self, c: u64) {
        if self.in_device {
            self.stats.device_cycles = c;
        } else {
            self.stats.host_cycles = c;
        }
    }

    fn exec_print(&mut self, fmt: &str, args: &[RtVal]) {
        let mut out = String::with_capacity(fmt.len() + args.len() * 8);
        let mut ai = 0;
        let mut rest = fmt;
        while let Some(pos) = rest.find("{}") {
            out.push_str(&rest[..pos]);
            if let Some(v) = args.get(ai) {
                match v {
                    RtVal::I(x) => out.push_str(&x.to_string()),
                    // Shortest-roundtrip formatting: deterministic and
                    // precise enough for checksum verification.
                    RtVal::F(x) => out.push_str(&format!("{x:?}")),
                    RtVal::P(x) => out.push_str(&format!("{x:#x}")),
                    RtVal::VI(xs) => out.push_str(&format!("{xs:?}")),
                    RtVal::VF(xs) => out.push_str(&format!("{xs:?}")),
                }
            }
            ai += 1;
            rest = &rest[pos + 2..];
        }
        out.push_str(rest);
        self.out.push_str(&out);
        self.out.push('\n');
    }

    fn load_typed(&mut self, addr: u64, ty: Ty) -> Result<RtVal, RuntimeError> {
        Ok(match ty {
            Ty::I1 | Ty::I8 => {
                let mut b = [0u8; 1];
                self.mem.read(addr, &mut b)?;
                RtVal::I(b[0] as i8 as i64)
            }
            Ty::I16 => {
                let mut b = [0u8; 2];
                self.mem.read(addr, &mut b)?;
                RtVal::I(i16::from_le_bytes(b) as i64)
            }
            Ty::I32 => {
                let mut b = [0u8; 4];
                self.mem.read(addr, &mut b)?;
                RtVal::I(i32::from_le_bytes(b) as i64)
            }
            Ty::I64 => {
                let mut b = [0u8; 8];
                self.mem.read(addr, &mut b)?;
                RtVal::I(i64::from_le_bytes(b))
            }
            Ty::F32 => {
                let mut b = [0u8; 4];
                self.mem.read(addr, &mut b)?;
                RtVal::F(f32::from_le_bytes(b) as f64)
            }
            Ty::F64 => {
                let mut b = [0u8; 8];
                self.mem.read(addr, &mut b)?;
                RtVal::F(f64::from_le_bytes(b))
            }
            Ty::Ptr => {
                let mut b = [0u8; 8];
                self.mem.read(addr, &mut b)?;
                RtVal::P(u64::from_le_bytes(b))
            }
            Ty::VecI64(n) => {
                let mut xs = Vec::with_capacity(n as usize);
                for i in 0..n as u64 {
                    let mut b = [0u8; 8];
                    self.mem.read(addr + 8 * i, &mut b)?;
                    xs.push(i64::from_le_bytes(b));
                }
                RtVal::VI(xs)
            }
            Ty::VecF64(n) => {
                let mut xs = Vec::with_capacity(n as usize);
                for i in 0..n as u64 {
                    let mut b = [0u8; 8];
                    self.mem.read(addr + 8 * i, &mut b)?;
                    xs.push(f64::from_le_bytes(b));
                }
                RtVal::VF(xs)
            }
        })
    }

    fn store_typed(&mut self, addr: u64, ty: Ty, v: &RtVal) -> Result<(), RuntimeError> {
        let badty = || RuntimeError::BadProgram(format!("store of {v:?} as {ty}"));
        match ty {
            Ty::I1 | Ty::I8 => {
                let x = v.as_i().map_err(|_| badty())?;
                self.mem.write(addr, &[(x as u8)])?;
            }
            Ty::I16 => {
                let x = v.as_i().map_err(|_| badty())?;
                self.mem.write(addr, &(x as i16).to_le_bytes())?;
            }
            Ty::I32 => {
                let x = v.as_i().map_err(|_| badty())?;
                self.mem.write(addr, &(x as i32).to_le_bytes())?;
            }
            Ty::I64 => {
                let x = v.as_i().map_err(|_| badty())?;
                self.mem.write(addr, &x.to_le_bytes())?;
            }
            Ty::F32 => {
                let x = v.as_f().map_err(|_| badty())?;
                self.mem.write(addr, &(x as f32).to_le_bytes())?;
            }
            Ty::F64 => {
                let x = v.as_f().map_err(|_| badty())?;
                self.mem.write(addr, &x.to_le_bytes())?;
            }
            Ty::Ptr => {
                let x = v.as_p().map_err(|_| badty())?;
                self.mem.write(addr, &x.to_le_bytes())?;
            }
            Ty::VecI64(n) => match v {
                RtVal::VI(xs) if xs.len() == n as usize => {
                    for (i, x) in xs.iter().enumerate() {
                        self.mem.write(addr + 8 * i as u64, &x.to_le_bytes())?;
                    }
                }
                _ => return Err(badty()),
            },
            Ty::VecF64(n) => match v {
                RtVal::VF(xs) if xs.len() == n as usize => {
                    for (i, x) in xs.iter().enumerate() {
                        self.mem.write(addr + 8 * i as u64, &x.to_le_bytes())?;
                    }
                }
                _ => return Err(badty()),
            },
        }
        Ok(())
    }
}

/// Evaluates a pre-decoded operand against the current frame. Slot
/// indices are validated at decode time, so indexing is safe; an empty
/// slot is an undefined read exactly as in the tree-walk.
#[inline(always)]
fn eval_opd(
    values: &[Option<RtVal>],
    args: &[RtVal],
    o: &Opd,
    msgs: &[Box<str>],
) -> Result<RtVal, RuntimeError> {
    match o {
        Opd::ImmI(x) => Ok(RtVal::I(*x)),
        Opd::ImmF(x) => Ok(RtVal::F(*x)),
        Opd::ImmP(x) => Ok(RtVal::P(*x)),
        Opd::Slot(s) => values[*s as usize]
            .clone()
            .ok_or_else(|| RuntimeError::UndefRead(format!("%{s}"))),
        Opd::Arg(i) => args
            .get(*i as usize)
            .cloned()
            .ok_or_else(|| RuntimeError::BadProgram(format!("missing arg {i}"))),
        Opd::Undef => Err(RuntimeError::UndefRead("undef".into())),
        Opd::Bad(mi) => Err(RuntimeError::BadProgram(msgs[*mi as usize].to_string())),
    }
}

/// Evaluates an operand to a reference, avoiding the clone (and the
/// drop of the temporary) that [`eval_opd`] pays for slot and argument
/// reads. Immediates materialize into `scratch`. Used by ops that only
/// inspect their operands (`Bin`, `Cmp`, `Cast`, the stored value):
/// error text and precedence are identical to [`eval_opd`].
#[inline(always)]
fn opd_ref<'a>(
    values: &'a [Option<RtVal>],
    args: &'a [RtVal],
    o: &Opd,
    msgs: &[Box<str>],
    scratch: &'a mut RtVal,
) -> Result<&'a RtVal, RuntimeError> {
    match o {
        Opd::ImmI(x) => {
            *scratch = RtVal::I(*x);
            Ok(scratch)
        }
        Opd::ImmF(x) => {
            *scratch = RtVal::F(*x);
            Ok(scratch)
        }
        Opd::ImmP(x) => {
            *scratch = RtVal::P(*x);
            Ok(scratch)
        }
        Opd::Slot(s) => values[*s as usize]
            .as_ref()
            .ok_or_else(|| RuntimeError::UndefRead(format!("%{s}"))),
        Opd::Arg(i) => args
            .get(*i as usize)
            .ok_or_else(|| RuntimeError::BadProgram(format!("missing arg {i}"))),
        Opd::Undef => Err(RuntimeError::UndefRead("undef".into())),
        Opd::Bad(mi) => Err(RuntimeError::BadProgram(msgs[*mi as usize].to_string())),
    }
}

/// Pointer-typed operand evaluation that skips the `RtVal` clone for
/// the hot slot/immediate cases. Error text and precedence are
/// identical to `eval_opd(..)?.as_p()` (undef-read first, then the type
/// mismatch), which is what the tree-walk produces.
#[inline(always)]
fn eval_opd_p(
    values: &[Option<RtVal>],
    args: &[RtVal],
    o: &Opd,
    msgs: &[Box<str>],
) -> Result<u64, RuntimeError> {
    match o {
        Opd::ImmP(x) => Ok(*x),
        Opd::Slot(s) => match &values[*s as usize] {
            Some(RtVal::P(p)) => Ok(*p),
            Some(other) => Err(RuntimeError::UndefRead(format!(
                "expected pointer, got {other:?}"
            ))),
            None => Err(RuntimeError::UndefRead(format!("%{s}"))),
        },
        _ => eval_opd(values, args, o, msgs)?
            .as_p()
            .map_err(RuntimeError::UndefRead),
    }
}

/// Integer-typed analogue of [`eval_opd_p`].
#[inline(always)]
fn eval_opd_i(
    values: &[Option<RtVal>],
    args: &[RtVal],
    o: &Opd,
    msgs: &[Box<str>],
) -> Result<i64, RuntimeError> {
    match o {
        Opd::ImmI(x) => Ok(*x),
        Opd::Slot(s) => match &values[*s as usize] {
            Some(RtVal::I(x)) => Ok(*x),
            Some(other) => Err(RuntimeError::UndefRead(format!(
                "expected int, got {other:?}"
            ))),
            None => Err(RuntimeError::UndefRead(format!("%{s}"))),
        },
        _ => eval_opd(values, args, o, msgs)?
            .as_i()
            .map_err(RuntimeError::UndefRead),
    }
}

fn exec_external(name: &str, args: &[RtVal]) -> Result<Option<RtVal>, RuntimeError> {
    let f1 = |f: fn(f64) -> f64| -> Result<Option<RtVal>, RuntimeError> {
        let x = args
            .first()
            .ok_or_else(|| RuntimeError::BadProgram(format!("{name} needs 1 arg")))?
            .as_f()
            .map_err(RuntimeError::UndefRead)?;
        Ok(Some(RtVal::F(f(x))))
    };
    match name {
        "sqrt" => f1(f64::sqrt),
        "exp" => f1(f64::exp),
        "log" => f1(f64::ln),
        "sin" => f1(f64::sin),
        "cos" => f1(f64::cos),
        "fabs" => f1(f64::abs),
        "floor" => f1(f64::floor),
        "ceil" => f1(f64::ceil),
        "pow" => {
            let x = args[0].as_f().map_err(RuntimeError::UndefRead)?;
            let y = args[1].as_f().map_err(RuntimeError::UndefRead)?;
            Ok(Some(RtVal::F(x.powf(y))))
        }
        other => Err(RuntimeError::BadProgram(format!(
            "unknown external function {other}"
        ))),
    }
}

fn exec_bin(op: BinOp, ty: Ty, a: &RtVal, b: &RtVal) -> Result<RtVal, RuntimeError> {
    fn iop(op: BinOp, x: i64, y: i64) -> Result<i64, RuntimeError> {
        Ok(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return Err(RuntimeError::DivByZero);
                }
                x.wrapping_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return Err(RuntimeError::DivByZero);
                }
                x.wrapping_rem(y)
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
            _ => return Err(RuntimeError::BadProgram(format!("int {op:?}"))),
        })
    }
    fn fop(op: BinOp, x: f64, y: f64) -> Result<f64, RuntimeError> {
        Ok(match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            BinOp::FMin => x.min(y),
            BinOp::FMax => x.max(y),
            _ => return Err(RuntimeError::BadProgram(format!("float {op:?}"))),
        })
    }
    match (ty, a, b) {
        (t, RtVal::I(x), RtVal::I(y)) if t.is_int() && !t.is_vector() => {
            Ok(RtVal::I(iop(op, *x, *y)?))
        }
        (t, RtVal::F(x), RtVal::F(y)) if t.is_float() && !t.is_vector() => {
            Ok(RtVal::F(fop(op, *x, *y)?))
        }
        // Pointer arithmetic through Add/Sub (rare; GEP is preferred).
        (Ty::I64, RtVal::P(x), RtVal::I(y)) => Ok(RtVal::P(match op {
            BinOp::Add => x.wrapping_add(*y as u64),
            BinOp::Sub => x.wrapping_sub(*y as u64),
            _ => return Err(RuntimeError::BadProgram("pointer bin".into())),
        })),
        (Ty::VecI64(_), RtVal::VI(xs), RtVal::VI(ys)) if xs.len() == ys.len() => {
            let mut out = Vec::with_capacity(xs.len());
            for (x, y) in xs.iter().zip(ys) {
                out.push(iop(op, *x, *y)?);
            }
            Ok(RtVal::VI(out))
        }
        (Ty::VecF64(_), RtVal::VF(xs), RtVal::VF(ys)) if xs.len() == ys.len() => {
            let mut out = Vec::with_capacity(xs.len());
            for (x, y) in xs.iter().zip(ys) {
                out.push(fop(op, *x, *y)?);
            }
            Ok(RtVal::VF(out))
        }
        _ => Err(RuntimeError::BadProgram(format!(
            "bin {op:?} type mismatch: {a:?} vs {b:?} as {ty}"
        ))),
    }
}

fn exec_cmp(p: CmpPred, a: &RtVal, b: &RtVal) -> Result<bool, RuntimeError> {
    let ord = match (a, b) {
        (RtVal::I(x), RtVal::I(y)) => x.partial_cmp(y),
        (RtVal::P(x), RtVal::P(y)) => x.partial_cmp(y),
        (RtVal::F(x), RtVal::F(y)) => x.partial_cmp(y),
        _ => None,
    };
    Ok(match (p, ord) {
        (CmpPred::Eq, Some(o)) => o == std::cmp::Ordering::Equal,
        (CmpPred::Ne, Some(o)) => o != std::cmp::Ordering::Equal,
        (CmpPred::Lt, Some(o)) => o == std::cmp::Ordering::Less,
        (CmpPred::Le, Some(o)) => o != std::cmp::Ordering::Greater,
        (CmpPred::Gt, Some(o)) => o == std::cmp::Ordering::Greater,
        (CmpPred::Ge, Some(o)) => o != std::cmp::Ordering::Less,
        // NaN comparisons are all false except Ne.
        (CmpPred::Ne, None) => true,
        (_, None) => false,
    })
}

fn exec_cast(kind: CastKind, v: &RtVal, to: Ty) -> Result<RtVal, RuntimeError> {
    Ok(match kind {
        CastKind::SiToFp => RtVal::F(v.as_i().map_err(RuntimeError::UndefRead)? as f64),
        CastKind::FpToSi => RtVal::I(v.as_f().map_err(RuntimeError::UndefRead)? as i64),
        CastKind::Trunc => {
            let x = v.as_i().map_err(RuntimeError::UndefRead)?;
            RtVal::I(match to {
                Ty::I1 => (x != 0) as i64,
                Ty::I8 => x as i8 as i64,
                Ty::I16 => x as i16 as i64,
                Ty::I32 => x as i32 as i64,
                _ => x,
            })
        }
        CastKind::Ext => v.clone(),
        CastKind::PtrToInt => RtVal::I(v.as_p().map_err(RuntimeError::UndefRead)? as i64),
        CastKind::IntToPtr => RtVal::P(v.as_i().map_err(RuntimeError::UndefRead)? as u64),
        CastKind::FpCast => match to {
            Ty::F32 => RtVal::F(v.as_f().map_err(RuntimeError::UndefRead)? as f32 as f64),
            _ => RtVal::F(v.as_f().map_err(RuntimeError::UndefRead)?),
        },
        CastKind::Splat => match (v, to) {
            (RtVal::I(x), Ty::VecI64(n)) => RtVal::VI(vec![*x; n as usize]),
            (RtVal::F(x), Ty::VecF64(n)) => RtVal::VF(vec![*x; n as usize]),
            _ => return Err(RuntimeError::BadProgram(format!("splat of {v:?} to {to}"))),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;

    #[test]
    fn straightline_arithmetic() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.alloca(8, "x");
        b.store(Ty::I64, Value::ConstInt(20), x);
        let l = b.load(Ty::I64, x);
        let s = b.add(l, Value::ConstInt(22));
        b.print("answer={}", vec![s]);
        b.ret(None);
        b.finish();
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "answer=42\n");
        assert!(out.stats.host_insts >= 5);
        assert_eq!(out.stats.loads, 1);
        assert_eq!(out.stats.stores, 1);
    }

    #[test]
    fn loop_sums() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let acc = b.alloca(8, "acc");
        b.store(Ty::I64, Value::ConstInt(0), acc);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(10), |b, i| {
            let cur = b.load(Ty::I64, acc);
            let nxt = b.add(cur, i);
            b.store(Ty::I64, nxt, acc);
        });
        let fin = b.load(Ty::I64, acc);
        b.print("sum={}", vec![fin]);
        b.ret(None);
        b.finish();
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "sum=45\n");
    }

    #[test]
    fn float_math_and_externals() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.fmul(Value::const_f64(3.0), Value::const_f64(12.0));
        let r = b.call_external("sqrt", vec![x], Some(Ty::F64)).unwrap();
        b.print("r={}", vec![r]);
        b.ret(None);
        b.finish();
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "r=6.0\n");
    }

    #[test]
    fn parallel_region_runs_all_threads() {
        let mut m = Module::new("t");
        let body = oraql_ir::builder::declare_function(
            &mut m,
            ".omp_outlined.",
            vec![Ty::I64, Ty::Ptr],
            None,
        );
        {
            // body: arr[tid] = tid * 2
            use oraql_ir::inst::Inst as I;
            let f = m.func_mut(body);
            f.outlined = true;
            let gep = f.push_inst(
                Function::ENTRY,
                I::Gep {
                    base: Value::Arg(1),
                    offset: GepOffset::Scaled {
                        index: Value::Arg(0),
                        scale: 8,
                        add: 0,
                    },
                },
                None,
            );
            let dbl = f.push_inst(
                Function::ENTRY,
                I::Bin {
                    op: BinOp::Mul,
                    ty: Ty::I64,
                    lhs: Value::Arg(0),
                    rhs: Value::ConstInt(2),
                },
                None,
            );
            f.push_inst(
                Function::ENTRY,
                I::Store {
                    ptr: Value::Inst(gep),
                    value: Value::Inst(dbl),
                    ty: Ty::I64,
                    meta: Default::default(),
                },
                None,
            );
            f.push_inst(Function::ENTRY, I::Ret { val: None }, None);
        }
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let arr = b.alloca(8 * 4, "arr");
        b.parallel_region(body, vec![arr], 4);
        for i in 0..4 {
            let a = b.gep(arr, 8 * i);
            let v = b.load(Ty::I64, a);
            b.print("{}", vec![v]);
        }
        b.ret(None);
        b.finish();
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "0\n2\n4\n6\n");
        assert_eq!(out.stats.launches, 1);
    }

    #[test]
    fn device_kernel_accumulates_device_stats() {
        let mut m = Module::new("t");
        let kern =
            oraql_ir::builder::declare_function(&mut m, "kernel", vec![Ty::I64, Ty::Ptr], None);
        {
            use oraql_ir::inst::Inst as I;
            let f = m.func_mut(kern);
            f.target = Target::Device;
            let gep = f.push_inst(
                Function::ENTRY,
                I::Gep {
                    base: Value::Arg(1),
                    offset: GepOffset::Scaled {
                        index: Value::Arg(0),
                        scale: 8,
                        add: 0,
                    },
                },
                None,
            );
            f.push_inst(
                Function::ENTRY,
                I::Store {
                    ptr: Value::Inst(gep),
                    value: Value::Arg(0),
                    ty: Ty::I64,
                    meta: Default::default(),
                },
                None,
            );
            f.push_inst(Function::ENTRY, I::Ret { val: None }, None);
        }
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let buf = b.alloca(8 * 8, "buf");
        b.kernel_launch(kern, vec![buf], 8);
        let a7 = b.gep(buf, 8 * 7);
        let v = b.load(Ty::I64, a7);
        b.print("{}", vec![v]);
        b.ret(None);
        b.finish();
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "7\n");
        assert!(out.stats.device_insts > 0);
        assert!(out.stats.device_cycles >= 1_000);
        assert!(out.stats.host_insts > 0);
    }

    #[test]
    fn undef_read_traps() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.print("{}", vec![Value::Undef]);
        b.ret(None);
        b.finish();
        assert!(matches!(
            Interpreter::run_main(&m),
            Err(RuntimeError::UndefRead(_))
        ));
    }

    #[test]
    fn div_by_zero_traps() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let d = b.div(Value::ConstInt(1), Value::ConstInt(0));
        b.print("{}", vec![d]);
        b.ret(None);
        b.finish();
        assert!(matches!(
            Interpreter::run_main(&m),
            Err(RuntimeError::DivByZero)
        ));
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let hdr = b.new_block();
        b.br(hdr);
        b.switch_to(hdr);
        b.br(hdr); // infinite loop
        let id = b.finish();
        let mut interp = Interpreter::new(&m).with_fuel(1000);
        assert!(matches!(
            interp.run(id, vec![]),
            Err(RuntimeError::FuelExhausted)
        ));
    }

    #[test]
    fn vector_ops_roundtrip() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let buf = b.alloca(32, "buf");
        for i in 0..4i64 {
            let a = b.gep(buf, 8 * i);
            b.store(Ty::F64, Value::const_f64(i as f64), a);
        }
        let v = b.load(Ty::VecF64(4), buf);
        let two = b.cast(CastKind::Splat, Value::const_f64(2.0), Ty::VecF64(4));
        let d = b.bin(BinOp::FMul, Ty::VecF64(4), v, two);
        b.store(Ty::VecF64(4), d, buf);
        let a3 = b.gep(buf, 24);
        let x3 = b.load(Ty::F64, a3);
        b.print("{}", vec![x3]);
        b.ret(None);
        b.finish();
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "6.0\n");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.alloca(800, "x");
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(100), |b, i| {
            let a = b.gep_scaled(x, i, 8, 0);
            let f = b.si_to_fp(i);
            let r = b.call_external("sin", vec![f], Some(Ty::F64)).unwrap();
            b.store(Ty::F64, r, a);
        });
        let a99 = b.gep(x, 8 * 99);
        let v = b.load(Ty::F64, a99);
        b.print("{}", vec![v]);
        b.ret(None);
        b.finish();
        let a = Interpreter::run_main(&m).unwrap();
        let b2 = Interpreter::run_main(&m).unwrap();
        assert_eq!(a.stdout, b2.stdout);
        assert_eq!(a.stats, b2.stats);
    }
}
