/root/repo/target/debug/deps/oraql_bench-782a1cbc28936e0d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liboraql_bench-782a1cbc28936e0d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liboraql_bench-782a1cbc28936e0d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
