//! Scaling study: how does the probing effort grow with the number of
//! dangerous queries?
//!
//! The paper argues the recursive strategy is superior to testing each
//! query individually when "most queries can be answered optimistically"
//! — i.e. the cost should scale with `P·log N` (P dangerous queries of
//! N total), not with `N`. This harness sweeps the planted hazard count
//! of the LULESH generator and reports tests run per strategy, plus the
//! naive per-query bound for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use oraql::{Driver, DriverOptions, Strategy, TestCase};
use oraql_bench::print_table;
use oraql_workloads::lulesh::{build_with, Variant};
use oraql_workloads::toolkit::standard_ignore_patterns;

fn case_with(hazards: i64) -> TestCase {
    let mut c = TestCase::new(&format!("lulesh-h{hazards}"), move || {
        build_with(Variant::Seq, hazards)
    });
    c.scope = oraql::compile::Scope::files(vec!["lulesh.cc".into()]);
    c.ignore_patterns = standard_ignore_patterns();
    c
}

fn scaling_table() {
    let mut rows = Vec::new();
    for hazards in [0i64, 1, 2, 4, 8, 16, 24] {
        let mut cells = vec![hazards.to_string()];
        let mut total_queries = 0;
        for strategy in [Strategy::Chunked, Strategy::FrequencySpace] {
            let case = case_with(hazards);
            let r = Driver::run(
                &case,
                DriverOptions {
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                r.oraql.unique_pessimistic >= hazards as u64,
                hazards > 0 || r.oraql.unique_pessimistic == 0
            );
            total_queries = r.oraql.unique();
            cells.push(format!(
                "{} tests ({} pess)",
                r.effort.tests_run, r.oraql.unique_pessimistic
            ));
        }
        cells.insert(1, total_queries.to_string());
        // Naive per-query testing would need one test per unique query.
        cells.push(format!("{total_queries} tests"));
        rows.push(cells);
    }
    print_table(
        "Scaling — probing effort vs planted hazards (LULESH generator)",
        &[
            "hazards",
            "unique queries",
            "chunked",
            "frequency-space",
            "naive bound",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    scaling_table();
    let mut g = c.benchmark_group("scaling");
    g.sample_size(10);
    for hazards in [1i64, 8] {
        g.bench_function(format!("driver/lulesh-h{hazards}"), |b| {
            b.iter(|| {
                let case = case_with(hazards);
                Driver::run(&case, DriverOptions::default()).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
