//! Wire-chaos benchmark: what the hardened wire costs when nothing is
//! going wrong, and what degraded mode costs when everything is.
//!
//! Three measurements:
//!
//! 1. **Fault-free wire overhead.** The warm 16-config suite replayed
//!    through a daemon with no fault plan (checksummed v2 frames,
//!    request ids, admission bookkeeping — the hardening itself), best
//!    of two passes, compared against the PR 5 recording in
//!    `BENCH_served.json`. Gate: ≤ 1.05×.
//! 2. **Armed-but-quiet overhead.** The same warm suite against a
//!    daemon whose fault injector is armed with all-zero rates — the
//!    cost of *consulting* the chaos sites on every request. Gate:
//!    ≤ 1.05× of the unarmed pass.
//! 3. **Degraded mode.** The full suite against a dead address with a
//!    local store attached: every case must complete through the
//!    local-tier fallback with the breaker engaged.
//!
//! Results land as JSON in `$ORAQL_BENCH_OUT` (default
//! `BENCH_chaosnet.json` in the working directory). Not a criterion
//! bench: the JSON artifact is the point.

use std::sync::Arc;
use std::time::Instant;

use oraql::faults::{FaultInjector, FaultPlan};
use oraql::{Driver, DriverOptions, Store};
use oraql_served::{Client, Server, ServerOptions};

/// One warm pass of every registered configuration through `addr`;
/// asserts it really was warm (zero compiles, all answers remote).
fn warm_pass_ms(addr: &str) -> f64 {
    let client = Arc::new(Client::new(addr));
    let t = Instant::now();
    for info in &oraql_workloads::CASE_INFOS {
        let case = oraql_workloads::find_case(info.name).expect("registered");
        let r = Driver::run(
            &case,
            DriverOptions {
                server: Some(Arc::clone(&client)),
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", info.name));
        assert_eq!(
            r.effort.compiles, 0,
            "{}: not warm: {:?}",
            info.name, r.effort
        );
        assert_eq!(r.failures.server_down, 0, "{}: {:?}", info.name, r.failures);
    }
    t.elapsed().as_secs_f64() * 1e3
}

/// The PR 5 baseline: `warm_total_ms` out of `BENCH_served.json`, if
/// the recording is present next to the output path.
fn served_baseline_ms(out: &std::path::Path) -> Option<f64> {
    let path = out.with_file_name("BENCH_served.json");
    let text = std::fs::read_to_string(path).ok()?;
    let rest = text.split("\"warm_total_ms\":").nth(1)?;
    rest.split(',').next()?.trim().parse().ok()
}

fn main() {
    let out = std::path::PathBuf::from(
        std::env::var("ORAQL_BENCH_OUT").unwrap_or_else(|_| "BENCH_chaosnet.json".into()),
    );
    let dir = std::env::temp_dir().join(format!("oraql_bench_chaosnet_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Populate once through an unarmed daemon (cold pass), then measure
    // warm replays: best of two so one scheduler hiccup cannot fail the
    // gate.
    let server = Server::start(&ServerOptions::new(&dir), "127.0.0.1:0").expect("start");
    let addr = server.addr();
    {
        let client = Arc::new(Client::new(&addr));
        for info in &oraql_workloads::CASE_INFOS {
            let case = oraql_workloads::find_case(info.name).expect("registered");
            Driver::run(
                &case,
                DriverOptions {
                    server: Some(Arc::clone(&client)),
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", info.name));
        }
        client.sync().expect("sync");
    }
    let plain_ms = warm_pass_ms(&addr).min(warm_pass_ms(&addr));
    println!("warm suite, hardened wire, no fault plan: {plain_ms:>8.1} ms");
    server.shutdown().expect("shutdown");

    // Same journals, fault injector armed with all-zero rates: the
    // per-request cost of consulting the chaos sites.
    let mut config = ServerOptions::new(&dir);
    config.faults = Some(Arc::new(FaultInjector::new(FaultPlan::quiet(42))));
    let server = Server::start(&config, "127.0.0.1:0").expect("restart");
    let addr = server.addr();
    let armed_ms = warm_pass_ms(&addr).min(warm_pass_ms(&addr));
    println!("warm suite, quiet fault plan armed:       {armed_ms:>8.1} ms");
    server.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    let armed_ratio = armed_ms / plain_ms;
    assert!(
        armed_ratio <= 1.05,
        "armed-but-quiet overhead {armed_ratio:.3}x exceeds the 1.05x gate"
    );

    let baseline = served_baseline_ms(&out);
    let vs_pr5 = baseline.map(|b| plain_ms / b);
    match (baseline, vs_pr5) {
        (Some(b), Some(r)) => {
            println!("vs BENCH_served.json warm recording ({b:.1} ms): {r:.3}x");
            assert!(
                r <= 1.05,
                "fault-free wire overhead {r:.3}x vs the BENCH_served recording \
                 exceeds the 1.05x gate"
            );
        }
        _ => println!("BENCH_served.json not found; recording absolute times only"),
    }

    // Degraded mode: a dead address, a local store, the full suite.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let store_dir =
        std::env::temp_dir().join(format!("oraql_bench_chaosnet_st_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    std::fs::create_dir_all(&store_dir).expect("mkdir");
    let store = Arc::new(Store::open(store_dir.join("verdicts.journal")).expect("store"));
    let dead_client = Arc::new(Client::new(&dead_addr));
    let t = Instant::now();
    let mut outages = 0u64;
    for info in &oraql_workloads::CASE_INFOS {
        let case = oraql_workloads::find_case(info.name).expect("registered");
        let r = Driver::run(
            &case,
            DriverOptions {
                server: Some(Arc::clone(&dead_client)),
                store: Some(Arc::clone(&store)),
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: degraded run failed: {e}", info.name));
        assert!(
            r.failures.server_down > 0,
            "{}: never saw the outage",
            info.name
        );
        assert_eq!(
            r.failures.quarantined, 0,
            "{}: outage quarantined a probe",
            info.name
        );
        outages += r.failures.server_down;
    }
    let degraded_ms = t.elapsed().as_secs_f64() * 1e3;
    let cs = dead_client.stats();
    assert!(cs.fast_fails > 0, "breaker never engaged: {cs}");
    println!(
        "degraded suite vs dead server:            {degraded_ms:>8.1} ms \
         ({outages} outages absorbed, {} fast-fails)",
        cs.fast_fails
    );
    let _ = std::fs::remove_dir_all(&store_dir);

    let cases = oraql_workloads::CASE_INFOS.len();
    let json = format!(
        "{{\n  \"bench\": \"chaos_net\",\n  \"cases_total\": {cases},\n  \
         \"warm_plain_total_ms\": {plain_ms:.2},\n  \
         \"warm_armed_quiet_total_ms\": {armed_ms:.2},\n  \
         \"armed_overhead_ratio\": {armed_ratio:.4},\n  \
         \"served_baseline_warm_ms\": {},\n  \
         \"vs_served_baseline_ratio\": {},\n  \
         \"degraded_total_ms\": {degraded_ms:.2},\n  \
         \"degraded_outages\": {outages},\n  \
         \"degraded_completed\": true\n}}\n",
        baseline.map_or("null".into(), |b| format!("{b:.2}")),
        vs_pr5.map_or("null".into(), |r| format!("{r:.4}")),
    );
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {}", out.display());
}
