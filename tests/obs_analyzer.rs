//! Integration coverage for the observability layer: the `oraql trace`
//! analyzer's aggregates are order-insensitive and deterministic, a
//! `--jobs 4` run's trace satisfies the same invariants as `--jobs 1`,
//! the span file rebuilds the `case > probe > compile|vm|verify` tree,
//! and the analyzer's Fig. 2 table reproduces the in-run CLI summary
//! from the JSONL artifact alone.

use std::collections::BTreeMap;
use std::path::PathBuf;

use oraql::report::render_trace_summary;
use oraql::trace::{read_trace, ProbeEvent, ProbeKind, TraceSink};
use oraql::{run_suite, DriverOptions, TestCase};
use oraql_obs::{read_spans, SpanSink};
use oraql_workloads as workloads;
use oraql_workloads::analyze;

/// A small but heterogeneous suite: plain, OpenMP, and a second
/// benchmark family, so dec-cache and speculation tiers get exercised.
fn small_suite() -> Vec<TestCase> {
    ["testsnap", "testsnap_omp", "gridmini"]
        .iter()
        .map(|n| workloads::find_case(n).expect(n))
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oraql_obs_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the suite with a trace (and optionally span) sink attached,
/// returning the recorded probe events.
fn traced_run(jobs: usize, spans: Option<&SpanSink>) -> Vec<ProbeEvent> {
    let sink = TraceSink::in_memory();
    let opts = DriverOptions {
        jobs,
        trace: Some(sink.clone()),
        spans: spans.cloned(),
        ..Default::default()
    };
    for r in run_suite(&small_suite(), &opts) {
        r.expect("suite case failed");
    }
    sink.events()
}

/// A deterministic in-place shuffle (splitmix64-driven Fisher-Yates):
/// reorders a parallel trace the way a different scheduling could have.
fn shuffle<T>(items: &mut [T], seed: u64) {
    oraql_obs::rng::Gen::new(seed).shuffle(items);
}

fn kind_total(events: &[ProbeEvent]) -> u64 {
    [
        ProbeKind::Executed,
        ProbeKind::ExeCacheHit,
        ProbeKind::DecisionCacheHit,
        ProbeKind::StoreHit,
        ProbeKind::ServerHit,
        ProbeKind::Deduced,
        ProbeKind::Faulted,
        // Not an answer: the waste marker for a speculative probe
        // cancelled after its compile already ran. Counted so the
        // conservation law below still covers every event.
        ProbeKind::Cancelled,
    ]
    .iter()
    .map(|&k| events.iter().filter(|e| e.kind == k).count() as u64)
    .sum()
}

/// Every analyzer aggregate must be a pure function of the event *set*:
/// shuffling a parallel trace (as a different scheduler interleaving
/// would) changes no rendered table.
#[test]
fn analyzer_aggregates_are_order_insensitive() {
    let events = traced_run(4, None);
    assert!(events.len() > 10, "suite produced only {}", events.len());
    let fig2 = render_trace_summary(&events);
    let fig4 = analyze::render_fig4(&events);
    let fig6 = analyze::render_fig6(&events);
    let funnel = analyze::render_funnel(&events);
    let latency = analyze::render_latency(&events);
    for seed in [1u64, 42, 0xdead_beef] {
        let mut reordered = events.clone();
        shuffle(&mut reordered, seed);
        assert_eq!(render_trace_summary(&reordered), fig2, "fig2, seed {seed}");
        assert_eq!(analyze::render_fig4(&reordered), fig4, "fig4, seed {seed}");
        assert_eq!(analyze::render_fig6(&reordered), fig6, "fig6, seed {seed}");
        assert_eq!(analyze::render_funnel(&reordered), funnel, "seed {seed}");
        assert_eq!(analyze::render_latency(&reordered), latency, "seed {seed}");
    }
}

/// A `--jobs 4` trace obeys the same conservation laws as `--jobs 1`,
/// and the two runs agree probe-by-probe on every decision digest they
/// share: parallelism may change *who answers* (cache tier, speculative
/// or not) but never *the answer*.
#[test]
fn parallel_trace_agrees_with_sequential_on_shared_digests() {
    let seq = traced_run(1, None);
    let par = traced_run(4, None);

    // Funnel conservation: every probe is answered by exactly one tier.
    assert_eq!(kind_total(&seq), seq.len() as u64);
    assert_eq!(kind_total(&par), par.len() as u64);
    // Sequential runs never speculate.
    assert!(seq.iter().all(|e| !e.speculative));

    // digest -> verdict maps (digest 0 is `deduced`, no vector;
    // `cancelled` waste markers carry no trustworthy verdict).
    let verdicts = |evs: &[ProbeEvent]| -> BTreeMap<(String, u64), bool> {
        evs.iter()
            .filter(|e| e.digest != 0 && e.kind != ProbeKind::Cancelled)
            .map(|e| ((e.case.clone(), e.digest), e.pass))
            .collect()
    };
    let sv = verdicts(&seq);
    let pv = verdicts(&par);
    let shared: Vec<_> = sv.keys().filter(|k| pv.contains_key(*k)).collect();
    assert!(!shared.is_empty(), "runs shared no digests");
    for key in shared {
        assert_eq!(sv[key], pv[key], "verdict flip on digest {key:?}");
    }

    // Within one run, a digest re-probed by any tier keeps its verdict.
    for evs in [&seq, &par] {
        let mut seen: BTreeMap<(String, u64), bool> = BTreeMap::new();
        for e in evs
            .iter()
            .filter(|e| e.digest != 0 && e.kind != ProbeKind::Cancelled)
        {
            let prior = seen.insert((e.case.clone(), e.digest), e.pass);
            assert_eq!(prior.unwrap_or(e.pass), e.pass, "self-inconsistent trace");
        }
    }
}

/// The spans file must round-trip and rebuild the probe hierarchy:
/// every `probe` hangs off a `case` root, every `compile`/`vm`/`verify`
/// off a `probe`, and parent spans enclose their children's span count.
#[test]
fn span_file_rebuilds_the_case_probe_hierarchy() {
    let dir = scratch("spans");
    let path = dir.join("spans.jsonl");
    let sink = SpanSink::to_file(&path).unwrap();
    let events = traced_run(1, Some(&sink));
    assert_eq!(sink.flush(), 0, "span lines were dropped");

    let spans = read_spans(&path).unwrap();
    assert_eq!(spans, sink.events(), "file does not round-trip");
    let by_id: BTreeMap<u64, _> = spans.iter().map(|s| (s.id, s)).collect();
    let mut probes = 0u64;
    for s in &spans {
        match s.name.as_str() {
            "case" => assert_eq!(s.parent, 0, "case spans are roots"),
            "probe" => {
                probes += 1;
                assert_eq!(by_id[&s.parent].name, "case", "probe parent");
                assert_eq!(by_id[&s.parent].case, s.case, "probe case label");
            }
            "compile" | "vm" | "verify" => {
                assert_eq!(by_id[&s.parent].name, "probe", "{} parent", s.name);
            }
            "baseline" | "final" | "store" | "server" => {
                assert_eq!(by_id[&s.parent].name, "case", "{} parent", s.name);
            }
            other => panic!("unexpected span name {other:?}"),
        }
    }
    // One probe span per sandboxed probe answer. Cache tiers answer
    // inside the probe span too; only `deduced` answers (the Fig. 2
    // rule, applied without materializing a probe) bypass the sandbox.
    let sandboxed = events
        .iter()
        .filter(|e| e.kind != ProbeKind::Deduced)
        .count() as u64;
    assert_eq!(probes, sandboxed, "probe span per sandboxed answer");
    // The self-time profile is well-formed: self <= total everywhere.
    for row in analyze::span_profile(&spans) {
        assert!(row.self_micros <= row.total_micros, "{row:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance anchor: `oraql trace --fig2` over the JSONL artifact
/// reproduces the in-run `--- probe trace summary ---` table exactly —
/// the analyzer and the live CLI can never drift apart.
#[test]
fn analyzer_fig2_reproduces_cli_summary_from_artifact() {
    let dir = scratch("fig2");
    let path = dir.join("trace.jsonl");
    let sink = TraceSink::to_file(path.to_str().unwrap()).unwrap();
    let opts = DriverOptions {
        jobs: 2,
        trace: Some(sink.clone()),
        ..Default::default()
    };
    for r in run_suite(&small_suite(), &opts) {
        r.expect("suite case failed");
    }
    assert_eq!(sink.flush(), 0, "trace lines were dropped");

    let live = render_trace_summary(&sink.events());
    let replayed = render_trace_summary(&read_trace(&path).unwrap());
    assert_eq!(replayed, live, "artifact does not reproduce CLI summary");
    let _ = std::fs::remove_dir_all(&dir);
}
