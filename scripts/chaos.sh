#!/usr/bin/env sh
# Chaos smoke for the probe sandbox (see docs/ARCHITECTURE.md §6).
#
# Runs the full 16-configuration suite under a deterministic
# fault-injection plan for a fixed seed matrix. At --jobs 1 the fault
# stream is part of the run's definition, so two runs with the same
# seed must produce byte-identical reports — including the sandbox
# failure counters and the fault summary. A final --jobs 4 pass with
# worker poisoning and a probe deadline is a completion/safety smoke
# only (the fault stream interleaves across threads there).
set -eu
cd "$(dirname "$0")/.."

BIN=target/release/oraql
[ -x "$BIN" ] || cargo build --release --offline

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for seed in 1 42 1337; do
    plan="seed=$seed,compile-panic=1/16,vm-trap=1/24,vm-fuel-lie=1/24,probe-delay=1/32,output-garble=1/24,store-read-corrupt=1/16"
    "$BIN" --all --fault-plan "$plan" > "$TMP/run_a.txt"
    "$BIN" --all --fault-plan "$plan" > "$TMP/run_b.txt"
    # Byte-identical, and the injector actually fired something.
    cmp "$TMP/run_a.txt" "$TMP/run_b.txt"
    grep -q '^--- fault injection' "$TMP/run_a.txt"
    grep -Eq 'total faults fired: [1-9]' "$TMP/run_a.txt"
    echo "chaos: seed=$seed deterministic"
done

# Parallel completion smoke: poisoned pool workers are respawned and
# injected hangs are cut by the watchdog; the suite must still finish
# with every case verified (non-zero exit otherwise).
"$BIN" --all --jobs 4 \
    --fault-plan "seed=7,compile-panic=1/12,vm-trap=1/16,worker-poison=1/6,probe-hang=1/64" \
    --probe-deadline-ms 500 > "$TMP/par.txt"
grep -q '^--- fault injection' "$TMP/par.txt"
echo "chaos: parallel poisoning smoke OK"
