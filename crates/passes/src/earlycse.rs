//! Early common-subexpression elimination: a per-block forward scan that
//! value-numbers pure expressions and forwards available loads/stores.

use crate::manager::{Pass, PassCx};
use oraql_analysis::location::{AliasResult, MemoryLocation};
use oraql_ir::inst::{CallKind, FuncRef, GepOffset, Inst, InstId};
use oraql_ir::module::{FunctionId, Module};
use oraql_ir::types::Ty;
use oraql_ir::value::Value;
use std::collections::HashMap;

/// Structural key of a pure expression (commutative operands are
/// canonicalized).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(oraql_ir::inst::BinOp, Ty, Value, Value),
    Cmp(oraql_ir::inst::CmpPred, Ty, Value, Value),
    GepConst(Value, i64),
    GepScaled(Value, Value, i64, i64),
    Cast(oraql_ir::inst::CastKind, Value, Ty),
    Select(Value, Value, Value, Ty),
}

fn expr_key(inst: &Inst) -> Option<ExprKey> {
    Some(match inst {
        Inst::Bin { op, ty, lhs, rhs } => {
            let (a, b) = if op.commutative() && rhs < lhs {
                (*rhs, *lhs)
            } else {
                (*lhs, *rhs)
            };
            ExprKey::Bin(*op, *ty, a, b)
        }
        Inst::Cmp { pred, ty, lhs, rhs } => ExprKey::Cmp(*pred, *ty, *lhs, *rhs),
        Inst::Gep { base, offset } => match offset {
            GepOffset::Const(c) => ExprKey::GepConst(*base, *c),
            GepOffset::Scaled { index, scale, add } => {
                ExprKey::GepScaled(*base, *index, *scale, *add)
            }
        },
        Inst::Cast { kind, val, to } => ExprKey::Cast(*kind, *val, *to),
        Inst::Select { cond, t, f, ty } => ExprKey::Select(*cond, *t, *f, *ty),
        _ => return None,
    })
}

/// One available memory value: the content of `(ptr, ty)` is `value`.
/// The access metadata of the originating load/store is kept so that
/// invalidation queries carry the proper TBAA/scope information.
struct AvailLoad {
    ptr: Value,
    ty: Ty,
    value: Value,
    meta: oraql_ir::meta::AccessMeta,
}

impl AvailLoad {
    fn location(&self) -> MemoryLocation {
        let mut loc = MemoryLocation::precise(self.ptr, self.ty.size());
        loc.tbaa = self.meta.tbaa;
        loc.scopes = self.meta.scopes.clone();
        loc.noalias = self.meta.noalias.clone();
        loc
    }
}

/// The pass.
pub struct EarlyCSE;

impl Pass for EarlyCSE {
    fn name(&self) -> &'static str {
        "early CSE"
    }

    fn run(&mut self, m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) {
        let nblocks = m.func(fid).blocks.len();
        let mut eliminated = 0u64;
        for bi in 0..nblocks {
            let bb = oraql_ir::value::BlockId(bi as u32);
            let mut exprs: HashMap<ExprKey, Value> = HashMap::new();
            let mut avail: Vec<AvailLoad> = Vec::new();
            // (from, to) replacements and removals applied after the scan
            // of each block to keep borrows simple.
            let mut replace: Vec<(InstId, Value)> = Vec::new();

            let inst_ids: Vec<InstId> = m.func(fid).blocks[bi].insts.clone();
            for id in inst_ids {
                // Clone the instruction so we can query AA (which borrows
                // the module) while inspecting it.
                let inst = m.func(fid).inst(id).clone();

                // Pure-expression CSE.
                if let Some(key) = expr_key(&inst) {
                    match exprs.get(&key) {
                        Some(&prev) => {
                            replace.push((id, prev));
                            eliminated += 1;
                        }
                        None => {
                            exprs.insert(key, Value::Inst(id));
                        }
                    }
                    continue;
                }

                match &inst {
                    Inst::Load { ptr, ty, meta } => {
                        if let Some(a) = avail.iter().find(|a| a.ptr == *ptr && a.ty == *ty) {
                            replace.push((id, a.value));
                            eliminated += 1;
                        } else {
                            avail.push(AvailLoad {
                                ptr: *ptr,
                                ty: *ty,
                                value: Value::Inst(id),
                                meta: meta.clone(),
                            });
                        }
                    }
                    Inst::Store {
                        ptr,
                        value,
                        ty,
                        meta,
                    } => {
                        // Kill everything this store may clobber.
                        let sloc =
                            MemoryLocation::of_access(m.func(fid), id).expect("store location");
                        avail.retain(|a| {
                            cx.aa.alias(m, fid, &sloc, &a.location()) == AliasResult::NoAlias
                        });
                        // The stored value is now available.
                        avail.push(AvailLoad {
                            ptr: *ptr,
                            ty: *ty,
                            value: *value,
                            meta: meta.clone(),
                        });
                    }
                    Inst::Call { callee, kind, .. } => {
                        let pure = matches!(
                            (callee, kind),
                            (FuncRef::External(sym), CallKind::Plain)
                                if oraql_analysis::aa::is_pure_external(
                                    m.strings.resolve(*sym)
                                )
                        );
                        if !pure {
                            avail.clear();
                        }
                    }
                    Inst::Memcpy { .. } => {
                        let dloc =
                            MemoryLocation::memcpy_dest(m.func(fid), id).expect("memcpy dest");
                        avail.retain(|a| {
                            cx.aa.alias(m, fid, &dloc, &a.location()) == AliasResult::NoAlias
                        });
                    }
                    _ => {}
                }
                let _ = bb;
            }

            let f = m.func_mut(fid);
            // Replacement targets may themselves have been replaced
            // earlier in this block; resolve chains before rewriting.
            let mut resolved: HashMap<Value, Value> = HashMap::new();
            for (id, mut to) in replace {
                while let Some(&t2) = resolved.get(&to) {
                    to = t2;
                }
                f.replace_all_uses(Value::Inst(id), to);
                f.remove_inst(id);
                resolved.insert(Value::Inst(id), to);
            }
        }
        cx.stat("early CSE", "instructions eliminated", eliminated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;
    use oraql_analysis::basic::BasicAA;
    use oraql_analysis::AAManager;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_vm::Interpreter;

    fn run_pass(m: &mut Module) -> Stats {
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let mut stats = Stats::new();
        for fi in 0..m.funcs.len() {
            let mut cx = PassCx {
                aa: &mut aa,
                stats: &mut stats,
            };
            EarlyCSE.run(m, FunctionId(fi as u32), &mut cx);
        }
        oraql_ir::verify::assert_valid(m);
        stats
    }

    #[test]
    fn duplicate_arithmetic_eliminated() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.add(Value::ConstInt(2), Value::ConstInt(3));
        let y = b.add(Value::ConstInt(3), Value::ConstInt(2)); // commuted dup
        let s = b.add(x, y);
        b.print("{}", vec![s]);
        b.ret(None);
        b.finish();
        let before = Interpreter::run_main(&m).unwrap();
        let stats = run_pass(&mut m);
        assert_eq!(stats.get("early CSE", "instructions eliminated"), 1);
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, after.stdout);
        assert!(after.stats.host_insts < before.stats.host_insts);
    }

    #[test]
    fn redundant_load_eliminated_when_no_clobber() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.alloca(8, "x");
        let y = b.alloca(8, "y");
        b.store(Ty::I64, Value::ConstInt(5), x);
        let l1 = b.load(Ty::I64, x);
        b.store(Ty::I64, l1, y); // store to y does not kill x
        let l2 = b.load(Ty::I64, x); // redundant
        let s = b.add(l1, l2);
        b.print("{}", vec![s]);
        b.ret(None);
        b.finish();
        let stats = run_pass(&mut m);
        // l1 is forwarded from the store (store-to-load fwd) and l2 too.
        assert!(stats.get("early CSE", "instructions eliminated") >= 2);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "10\n");
    }

    #[test]
    fn aliasing_store_kills_available_load() {
        // Store through an unknown pointer kills the availability of a
        // load through another unknown pointer.
        let mut m = Module::new("t");
        let g = m.add_global("buf", 16, vec![], false);
        let callee = {
            let mut b = FunctionBuilder::new(&mut m, "work", vec![Ty::Ptr, Ty::Ptr], None);
            let p = b.arg(0);
            let q = b.arg(1);
            let l1 = b.load(Ty::I64, p);
            b.store(Ty::I64, Value::ConstInt(9), q); // may clobber p
            let l2 = b.load(Ty::I64, p); // NOT redundant
            let s = b.add(l1, l2);
            b.print("{}", vec![s]);
            b.ret(None);
            b.finish()
        };
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let base = Value::Global(g);
        b.store(Ty::I64, Value::ConstInt(1), base);
        b.call(callee, vec![base, base], None);
        b.ret(None);
        b.finish();
        let before = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, "10\n"); // 1 + 9
        run_pass(&mut m);
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(after.stdout, "10\n"); // load not wrongly CSE'd
    }

    use oraql_ir::Ty;

    #[test]
    fn calls_invalidate_available_loads() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 8, vec![], false);
        let bump = {
            let mut b = FunctionBuilder::new(&mut m, "bump", vec![], None);
            let l = b.load(Ty::I64, Value::Global(g));
            let n = b.add(l, Value::ConstInt(1));
            b.store(Ty::I64, n, Value::Global(g));
            b.ret(None);
            b.finish()
        };
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let l1 = b.load(Ty::I64, Value::Global(g));
        b.call(bump, vec![], None);
        let l2 = b.load(Ty::I64, Value::Global(g));
        let s = b.add(l1, l2);
        b.print("{}", vec![s]);
        b.ret(None);
        b.finish();
        run_pass(&mut m);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "1\n"); // 0 + 1, not 0 + 0
    }
}
