//! Regenerates the paper's **Fig. 2** phenomenon: recursive probing
//! with the deduction rule, and the observation that *clustered*
//! dangerous queries favour the chunked strategy while the
//! frequency-space strategy must refine almost to singletons.
//!
//! Prints tests-run counts for chunked vs frequency-space vs a naive
//! per-query scan over synthetic dangerous-query layouts, then
//! Criterion-times both strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use oraql::sequence::Decisions;
use oraql::strategy::{chunked, frequency_space, ProbeOutcome, Prober};
use oraql_bench::print_table;

/// Synthetic prober over a fixed dangerous-index set.
struct Synthetic {
    dangerous: Vec<u64>,
    n: u64,
    tests: u64,
    deduced: u64,
}

impl Synthetic {
    fn new(dangerous: Vec<u64>, n: u64) -> Self {
        Synthetic {
            dangerous,
            n,
            tests: 0,
            deduced: 0,
        }
    }
}

impl Prober for Synthetic {
    fn probe(&mut self, d: &Decisions) -> ProbeOutcome {
        self.tests += 1;
        ProbeOutcome {
            pass: self.dangerous.iter().all(|&i| !d.decide(i)),
            unique: self.n,
        }
    }
    fn budget_exceeded(&self) -> bool {
        false
    }
    fn note_deduced(&mut self) {
        self.deduced += 1;
    }
}

/// A naive scan: test each query individually (the strategy the paper
/// argues against when most queries are optimistic).
fn naive_scan(s: &mut Synthetic) -> Decisions {
    let mut seq = Vec::new();
    for i in 0..s.n {
        let mut attempt = seq.clone();
        attempt.push(true);
        let mut d = Decisions::Explicit {
            seq: attempt.clone(),
            tail: false,
        };
        let pass = s.probe(&d).pass;
        if !pass {
            attempt[i as usize] = false;
        }
        seq = attempt;
        d = Decisions::Explicit {
            seq: seq.clone(),
            tail: false,
        };
        let _ = d;
    }
    Decisions::Explicit { seq, tail: true }
}

fn layouts() -> Vec<(&'static str, Vec<u64>, u64)> {
    vec![
        ("no dangers", vec![], 256),
        ("1 danger", vec![101], 256),
        ("clustered (8 adjacent)", (96..104).collect(), 256),
        (
            "scattered (8 spread)",
            vec![3, 40, 77, 110, 150, 190, 220, 250],
            256,
        ),
        ("dense cluster (32 adjacent)", (100..132).collect(), 512),
    ]
}

fn print_fig2() {
    let mut rows = Vec::new();
    for (name, dangerous, n) in layouts() {
        let mut sc = Synthetic::new(dangerous.clone(), n);
        let dc = chunked(&mut sc);
        for &i in &dangerous {
            assert!(!dc.decide(i));
        }
        let mut sf = Synthetic::new(dangerous.clone(), n);
        let df = frequency_space(&mut sf);
        for &i in &dangerous {
            assert!(!df.decide(i));
        }
        let mut sn = Synthetic::new(dangerous.clone(), n);
        let dn = naive_scan(&mut sn);
        for &i in &dangerous {
            assert!(!dn.decide(i));
        }
        rows.push(vec![
            name.to_string(),
            n.to_string(),
            dangerous.len().to_string(),
            format!("{} (+{} deduced)", sc.tests, sc.deduced),
            format!("{} (+{} deduced)", sf.tests, sf.deduced),
            sn.tests.to_string(),
            dc.pessimistic_count(n).to_string(),
            df.pessimistic_count(n).to_string(),
        ]);
    }
    print_table(
        "Fig. 2 — probing effort by strategy and dangerous-query layout",
        &[
            "layout",
            "queries",
            "dangerous",
            "chunked tests",
            "freq-space tests",
            "naive tests",
            "chunked pess",
            "freq pess",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    print_fig2();
    let mut g = c.benchmark_group("strategy");
    g.bench_function("chunked/clustered-8-of-256", |b| {
        b.iter(|| {
            let mut s = Synthetic::new((96..104).collect(), 256);
            chunked(&mut s)
        })
    });
    g.bench_function("frequency/clustered-8-of-256", |b| {
        b.iter(|| {
            let mut s = Synthetic::new((96..104).collect(), 256);
            frequency_space(&mut s)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
