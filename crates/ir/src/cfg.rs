//! CFG utilities: successor/predecessor computation and reverse
//! postorder. Dominators and loops live in `oraql-analysis`.

use crate::inst::Inst;
use crate::module::Function;
use crate::value::BlockId;

/// Successor blocks of `bb` (0, 1 or 2 entries).
pub fn successors(f: &Function, bb: BlockId) -> Vec<BlockId> {
    match f.terminator(bb).map(|t| f.inst(t)) {
        Some(Inst::Br { target }) => vec![*target],
        Some(Inst::CondBr {
            then_bb, else_bb, ..
        }) => {
            if then_bb == else_bb {
                vec![*then_bb]
            } else {
                vec![*then_bb, *else_bb]
            }
        }
        _ => vec![],
    }
}

/// Predecessor lists for every block, indexed by block id.
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for i in 0..f.blocks.len() {
        let bb = BlockId(i as u32);
        for s in successors(f, bb) {
            preds[s.0 as usize].push(bb);
        }
    }
    preds
}

/// Reverse postorder over the CFG starting at the entry block.
/// Unreachable blocks are not visited.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor-idx).
    let mut stack: Vec<(BlockId, usize)> = vec![(Function::ENTRY, 0)];
    visited[Function::ENTRY.0 as usize] = true;
    while let Some(&mut (bb, ref mut idx)) = stack.last_mut() {
        let succs = successors(f, bb);
        if *idx < succs.len() {
            let s = succs[*idx];
            *idx += 1;
            if !visited[s.0 as usize] {
                visited[s.0 as usize] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(bb);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// True when every block is reachable from entry.
pub fn all_reachable(f: &Function) -> bool {
    reverse_postorder(f).len() == f.blocks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::Module;
    use crate::types::Ty;
    use crate::value::Value;

    #[test]
    fn diamond_rpo() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "d", vec![Ty::I1], None);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.arg(0);
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let rpo = reverse_postorder(f);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], Function::ENTRY);
        assert_eq!(*rpo.last().unwrap(), j);
        let preds = predecessors(f);
        assert_eq!(preds[j.0 as usize].len(), 2);
        assert!(all_reachable(f));
    }

    #[test]
    fn same_target_condbr_counts_once() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "s", vec![Ty::I1], None);
        let x = b.new_block();
        let c = b.arg(0);
        b.cond_br(c, x, x);
        b.switch_to(x);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        assert_eq!(successors(f, Function::ENTRY), vec![x]);
    }

    #[test]
    fn unreachable_block_detected() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "u", vec![], None);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let id = b.finish();
        assert!(!all_reachable(m.func(id)));
    }

    #[test]
    fn loop_rpo_contains_all() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "l", vec![], None);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(4), |_, _| {});
        b.ret(None);
        let id = b.finish();
        assert!(all_reachable(m.func(id)));
    }
}
