//! Cross-crate integration tests: the ORAQL driver run end-to-end on
//! the proxy-application configurations, checking the paper-shaped
//! outcomes (which configurations verify fully optimistically, where
//! the pessimistic queries land, which statistics move).

use oraql::{Driver, DriverOptions};
use oraql_workloads as workloads;

fn run(name: &str) -> oraql::DriverResult {
    let case = workloads::find_case(name).expect(name);
    Driver::run(&case, DriverOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn testsnap_seq_is_fully_optimistic() {
    let r = run("testsnap");
    assert!(r.fully_optimistic, "effort: {:?}", r.effort);
    assert_eq!(r.oraql.unique_pessimistic, 0);
    assert!(r.oraql.unique_optimistic > 20, "{:?}", r.oraql);
    assert!(r.no_alias_oraql > r.no_alias_original);
}

#[test]
fn testsnap_omp_needs_a_handful_of_pessimistic_queries() {
    let r = run("testsnap_omp");
    assert!(!r.fully_optimistic);
    // The paper reports exactly 4; our miniature re-creation plants 4
    // hazards. Bisection may pin a couple of adjacent pairs as well.
    assert!(
        (3..=8).contains(&r.oraql.unique_pessimistic),
        "pessimistic = {:?}",
        r.oraql
    );
    assert!(r.oraql.unique_optimistic > r.oraql.unique_pessimistic * 5);
    let sums = |s: &str| {
        s.lines()
            .filter(|l| l.starts_with("checksum"))
            .collect::<Vec<_>>()
            .join("|")
    };
    assert_eq!(sums(&r.baseline_run.stdout), sums(&r.final_run.stdout));
    // The pessimistic queries were first issued inside the outlined
    // parallel region.
    let pess: Vec<_> = r.queries.iter().filter(|q| !q.optimistic).collect();
    assert!(!pess.is_empty());
    for q in &pess {
        let f = r.final_module.func(q.func);
        assert!(f.outlined, "pessimistic query outside the outlined region");
    }
}

#[test]
fn xsbench_pessimistic_queries_are_shared_across_models() {
    let c = run("xsbench");
    let o = run("xsbench_omp");
    assert!(!c.fully_optimistic);
    assert!(!o.fully_optimistic);
    // Eleven dist[12] hazards in both; the OpenMP variant issues more
    // queries overall (parallel indirection).
    assert!(
        (10..=14).contains(&c.oraql.unique_pessimistic),
        "{:?}",
        c.oraql
    );
    assert!(
        (10..=14).contains(&o.oraql.unique_pessimistic),
        "{:?}",
        o.oraql
    );
    assert!(o.oraql.unique() >= c.oraql.unique());
}

#[test]
fn gridmini_fully_optimistic_but_slower() {
    let r = run("gridmini");
    assert!(r.fully_optimistic, "{:?}", r.oraql);
    // The kernels got *slower* with perfect alias information (the
    // paper's 7% regression): hoisted rare-loop loads execute in every
    // work item.
    assert!(
        r.final_run.stats.device_cycles > r.baseline_run.stats.device_cycles,
        "device cycles {} -> {}",
        r.baseline_run.stats.device_cycles,
        r.final_run.stats.device_cycles
    );
}

#[test]
fn quicksilver_statistics_shift() {
    let r = run("quicksilver");
    assert!(r.fully_optimistic, "{:?}", r.oraql);
    let del_before = r.baseline_stats.get("loop deletion", "deleted loops");
    let del_after = r.final_stats.get("loop deletion", "deleted loops");
    assert!(
        del_after > del_before,
        "deleted loops {del_before} -> {del_after}"
    );
    let dse_before = r.baseline_stats.get("DSE", "stores deleted");
    let dse_after = r.final_stats.get("DSE", "stores deleted");
    assert!(dse_after > dse_before, "DSE {dse_before} -> {dse_after}");
    let gvn_before = r.baseline_stats.get("GVN", "loads deleted");
    let gvn_after = r.final_stats.get("GVN", "loads deleted");
    assert!(gvn_after > gvn_before, "GVN {gvn_before} -> {gvn_after}");
    // And the work actually disappears at run time.
    assert!(r.final_run.stats.host_insts < r.baseline_run.stats.host_insts);
}

#[test]
fn minigmg_ompif_speeds_up_via_vectorization() {
    let r = run("minigmg_ompif");
    assert!(r.fully_optimistic, "{:?}", r.oraql);
    let vec_before = r.baseline_stats.get("loop vectorizer", "vectorized loops");
    let vec_after = r.final_stats.get("loop vectorizer", "vectorized loops");
    assert!(
        vec_after > vec_before,
        "vectorized {vec_before} -> {vec_after}"
    );
    assert!(
        r.final_run.stats.host_insts < r.baseline_run.stats.host_insts,
        "insts {} -> {}",
        r.baseline_run.stats.host_insts,
        r.final_run.stats.host_insts
    );
}

#[test]
fn lulesh_cannot_be_fully_optimistic() {
    let r = run("lulesh");
    assert!(!r.fully_optimistic);
    assert!(r.oraql.unique_pessimistic >= 4, "{:?}", r.oraql);
    // But the vast majority of queries is still optimistic and the
    // no-alias count rises substantially.
    assert!(r.no_alias_delta_percent() > 10.0);
    // Checksums identical to the baseline (the Runtime/FOM lines are
    // volatile by design and covered by ignore patterns).
    let sums = |s: &str| {
        s.lines()
            .filter(|l| l.starts_with("checksum"))
            .collect::<Vec<_>>()
            .join("|")
    };
    assert_eq!(sums(&r.baseline_run.stdout), sums(&r.final_run.stdout));
}
