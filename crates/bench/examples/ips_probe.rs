//! Steady-state dispatch-rate probe: one long counted loop, so decode
//! and memory-init costs are amortised to nothing and the printed
//! M insts/s is the pure per-instruction dispatch rate of each mode.

use oraql_ir::builder::FunctionBuilder;
use oraql_ir::{Module, Ty, Value};
use oraql_vm::{InterpMode, Interpreter};
use std::time::Instant;

fn long_program(trips: i64) -> Module {
    let mut m = Module::new("ips");
    let g = m.add_global("buf", 256, vec![], false);
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(trips), |b, i| {
        let idx = b.rem(i, Value::ConstInt(16));
        let p = b.gep_scaled(Value::Global(g), idx, 8, 0);
        let v = b.load(Ty::I64, p);
        let s = b.add(v, i);
        b.store(Ty::I64, s, p);
    });
    let p = b.gep(Value::Global(g), 0);
    let v = b.load(Ty::I64, p);
    b.print("{}", vec![v]);
    b.ret(None);
    b.finish();
    m
}

fn main() {
    let m = long_program(300_000);
    for mode in [InterpMode::TreeWalk, InterpMode::Decoded] {
        let main = m.find_func("main").unwrap();
        let mut interp = Interpreter::new(&m).with_mode(mode);
        let t = Instant::now();
        interp.run(main, vec![]).unwrap();
        let el = t.elapsed().as_secs_f64();
        let insts = interp.stats().total_insts();
        println!(
            "{mode:?}: {:.1} ms, {} insts, {:.1} M insts/s",
            el * 1e3,
            insts,
            insts as f64 / el / 1e6
        );
    }
}
