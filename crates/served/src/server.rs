//! The verdict server: sharded journals, a read-mostly index, group
//! fsync, admission control, and a thread-per-connection acceptor pool.
//!
//! # Architecture
//!
//! The daemon owns `shards` independent [`oraql_store::Store`] journals
//! (`shard-NN.journal` under one directory). A record lands in shard
//! `key % shards` — verdict keys and case salts are already
//! well-mixed salted hashes, so this spreads load without any routing
//! table. Each shard pairs its store (durability, dedup, compaction,
//! advisory locking — all inherited from PR 3) with an in-memory
//! [`std::sync::RwLock`]'d map replayed from the journal at startup, so
//! **lookups never touch disk**: a `GET` takes one shard read lock and
//! one hash probe.
//!
//! Writes go journal-first (a `write(2)` append under the store's
//! shared advisory lock), then update the index, then ack — so a
//! client that got its `PUT` acked sees the record in its own later
//! `GET`s, and a crash at *any* point loses at most unacked work (the
//! crash-point torture in `crates/served/tests/crash_torture.rs` pins
//! this). Durability is batched: a background thread group-fsyncs
//! every dirty shard each `fsync_interval` (and at shutdown), bounding
//! the power-loss window to one interval without paying an fsync per
//! append. The `SYNC` op forces a pass for clients that need a hard
//! checkpoint.
//!
//! # Overload: admission control and load shedding
//!
//! Two bounds, both off by default (0 = unbounded) and promoted to CLI
//! flags on the daemon:
//!
//! * `max_inflight` caps concurrently *executing* requests. A request
//!   that cannot get a slot waits up to its op's admission deadline
//!   (`request_deadline` for data ops; 10× that for maintenance ops,
//!   which are rare and humans are watching), then is shed with
//!   [`Response::Busy`] — the request was **not** executed.
//! * `max_conns` caps serving connections. A connection over the cap
//!   gets its first request answered `BUSY` and is closed.
//!
//! Every shed increments `oraql_served_shed_total`; see
//! `docs/OPERATIONS.md` § "Overload & partition playbook".
//!
//! # Chaos hooks
//!
//! When built with a [`oraql_faults::FaultInjector`] (`faults` option /
//! daemon `--fault-plan`), the server injects the wire and daemon
//! fault sites at their natural choke points: the response-write site
//! (`conn-reset`, `frame-torn`, `frame-garble`, `response-delay`,
//! `response-hang`), the group-fsync pass (`fsync-fail`), and the
//! named crash points threaded through the write path (`crash-point`).
//! [`CrashMode`] picks between a real `std::process::abort` (daemon
//! under torture) and a simulated hard stop (in-process servers:
//! connections drop unacked, fsync stops, shutdown skips the final
//! sync — exactly what a kill would leave behind, minus losing the
//! page cache).
//!
//! # Concurrency contract
//!
//! * Acceptor threads share the listener via `try_clone`; each accepted
//!   connection gets its own serving thread (thread-per-connection,
//!   mirroring `crates/core/src/pool.rs`: named threads, an atomic
//!   shutdown flag, handles joined on drop, poison-immune locks).
//! * Shard state is `RwLock` per shard: many concurrent readers, one
//!   writer, no cross-shard lock is ever held — two ops deadlock-free
//!   by construction.
//! * [`Server::shutdown`] (also run by `Drop`) stops accepting, wakes
//!   every blocked acceptor, joins every connection thread, and runs a
//!   final group fsync — after it returns, all acked writes are on
//!   disk (unless a simulated crash is in effect, which is the point).

use crate::net::{Addr, Conn, Listener};
use crate::protocol::{read_frame, write_frame, Op, Request, Response, Status};
use oraql_faults::{FaultInjector, FaultSite};
use oraql_store::{Record, Store, StoreError, REF_SEP};
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// What the server does when an injected `crash-point` fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashMode {
    /// `std::process::abort()` — the real thing. Used by the daemon
    /// under the crash-torture harness, which runs it as a child
    /// process and restarts it.
    #[default]
    Abort,
    /// A simulated hard stop for in-process servers (aborting would
    /// take the test down too): every connection drops without acking,
    /// fsync passes stop, and shutdown skips the final sync. The
    /// journal holds exactly what a kill would have left.
    Simulate,
}

/// How a [`Server`] is laid out on disk, sized, and hardened. Plain
/// data; build one, hand it to [`Server::start`]. Every duration and
/// bound here is a daemon CLI flag — see `oraql-served serve --help`
/// and the defaults table in `docs/OPERATIONS.md`.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Directory holding the shard journals (created if missing).
    pub dir: PathBuf,
    /// Number of shard journals (≥ 1). Must stay constant across
    /// restarts of the same `dir` — records do not migrate.
    pub shards: usize,
    /// Acceptor threads sharing the listening socket (≥ 1). Each
    /// accepted connection still gets its own serving thread; this only
    /// bounds how many accepts can be in flight at once.
    pub acceptors: usize,
    /// Group-fsync cadence: the upper bound on how long an acked write
    /// may sit only in the page cache. Default 5 ms.
    pub fsync_interval: Duration,
    /// Per-connection socket write timeout: how long one response write
    /// may block on a stalled peer before the connection is dropped.
    /// Default 10 s.
    pub write_timeout: Duration,
    /// How long a connection thread blocks in `read` before re-checking
    /// the shutdown flag. Bounds shutdown latency, not request latency.
    /// Default 100 ms.
    pub idle_poll: Duration,
    /// Admission cap on concurrently executing requests; `0` means
    /// unbounded (the default). See the module docs on overload.
    pub max_inflight: usize,
    /// Cap on concurrently served connections; `0` means unbounded
    /// (the default). A connection over the cap is answered `BUSY`
    /// once and closed.
    pub max_conns: usize,
    /// Admission deadline for data ops (`GET`/`PUT`) when
    /// `max_inflight` is hit; maintenance ops wait 10× this. Default
    /// 100 ms.
    pub request_deadline: Duration,
    /// How long the `response-hang` fault site sits on a response —
    /// meaningful only under a fault plan; pick it longer than the
    /// client read timeout. Default 3 s.
    pub fault_hang: Duration,
    /// Wire/daemon chaos: a seeded injector consulted at the fault
    /// sites listed in the module docs. `None` (the default) injects
    /// nothing and costs nothing.
    pub faults: Option<Arc<FaultInjector>>,
    /// What an injected `crash-point` does. Irrelevant without
    /// `faults`.
    pub crash_mode: CrashMode,
}

/// The pre-hardening name of [`ServerOptions`], kept so existing call
/// sites and docs keep working.
pub type ServerConfig = ServerOptions;

impl ServerOptions {
    /// A config with the defaults: 4 shards, 2 acceptors, 5 ms fsync,
    /// 10 s write timeout, 100 ms idle poll, unbounded admission, no
    /// faults.
    pub fn new(dir: impl Into<PathBuf>) -> ServerOptions {
        ServerOptions {
            dir: dir.into(),
            shards: 4,
            acceptors: 2,
            fsync_interval: Duration::from_millis(5),
            write_timeout: Duration::from_secs(10),
            idle_poll: Duration::from_millis(100),
            max_inflight: 0,
            max_conns: 0,
            request_deadline: Duration::from_millis(100),
            fault_hang: Duration::from_secs(3),
            faults: None,
            crash_mode: CrashMode::default(),
        }
    }
}

/// The in-memory image of one shard's live records. Guarded by the
/// shard's `RwLock`; populated by journal replay at startup, kept in
/// step by every accepted `PUT`.
#[derive(Debug, Default)]
struct ShardIndex {
    dec: HashMap<u64, (bool, u64)>,
    exe: HashMap<u64, (bool, u64)>,
    refs: HashMap<u64, String>,
}

/// Per-shard counters (all monotone, all relaxed — they feed summary
/// text, not synchronization).
#[derive(Debug, Default)]
struct ShardCounters {
    lookups: AtomicU64,
    hits: AtomicU64,
    appends: AtomicU64,
    fsyncs: AtomicU64,
}

struct Shard {
    store: Store,
    index: RwLock<ShardIndex>,
    /// Set by every acked append, cleared by the fsync pass that
    /// persisted it.
    dirty: AtomicBool,
    counters: ShardCounters,
}

impl Shard {
    fn open(path: PathBuf) -> Result<Shard, StoreError> {
        let store = Store::open(path)?;
        let mut index = ShardIndex::default();
        for r in store.export() {
            match r {
                Record::DecVerdict { key, pass, unique } => {
                    index.dec.insert(key, (pass, unique));
                }
                Record::ExeVerdict { key, pass, unique } => {
                    index.exe.insert(key, (pass, unique));
                }
                Record::Reference { key, output } => {
                    index.refs.insert(key, output);
                }
            }
        }
        Ok(Shard {
            store,
            index: RwLock::new(index),
            dirty: AtomicBool::new(false),
            counters: ShardCounters::default(),
        })
    }
}

/// Server-wide counters.
#[derive(Debug, Default)]
struct ServerCounters {
    connections: AtomicU64,
    active: AtomicU64,
    requests: AtomicU64,
    bad_frames: AtomicU64,
    shed: AtomicU64,
    fsync_batches: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

/// State shared by every acceptor, connection, and the fsync thread.
struct Core {
    shards: Vec<Shard>,
    counters: ServerCounters,
    shutdown: AtomicBool,
    /// Set by a simulated crash-point: the daemon behaves as killed
    /// (see [`CrashMode::Simulate`]).
    crashed: AtomicBool,
    /// Requests currently executing (admitted, not yet answered).
    inflight: AtomicU64,
    dir: PathBuf,
    opts: ServerOptions,
}

impl Core {
    fn shard_of(&self, key: u64) -> &Shard {
        // shards >= 1 is enforced by Server::start.
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    fn note_shed(&self) {
        self.counters.shed.fetch_add(1, Ordering::Relaxed);
        static SHED: std::sync::OnceLock<&'static oraql_obs::Counter> = std::sync::OnceLock::new();
        SHED.get_or_init(|| oraql_obs::global().counter("oraql_served_shed_total"))
            .inc();
    }

    /// Consults the fault plan for an injected crash at the named
    /// point. Under [`CrashMode::Abort`] this call does not return.
    fn crash_point(&self, _point: &'static str) {
        let Some(f) = &self.opts.faults else { return };
        if f.fire(FaultSite::CrashPoint) {
            match self.opts.crash_mode {
                CrashMode::Abort => std::process::abort(),
                CrashMode::Simulate => self.crashed.store(true, Ordering::Release),
            }
        }
    }

    fn is_dead(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || self.crashed.load(Ordering::Acquire)
    }

    /// Admission control: claims an execution slot, waiting up to the
    /// op's admission deadline when `max_inflight` is saturated.
    /// Returns `false` — shed, answer `BUSY`, execute nothing — on
    /// deadline. The caller owns one `inflight` decrement iff this
    /// returns `true`.
    fn admit(&self, op: Op) -> bool {
        let max = self.opts.max_inflight as u64;
        if max == 0 {
            self.inflight.fetch_add(1, Ordering::AcqRel);
            return true;
        }
        // Maintenance ops are rare, human-driven, and worth waiting
        // for; data ops shed fast so the driver falls back to its
        // local tiers instead of queueing behind an overload.
        let deadline = match op {
            Op::Stats | Op::Sync | Op::Compact | Op::Metrics => self.opts.request_deadline * 10,
            _ => self.opts.request_deadline,
        };
        let start = Instant::now();
        loop {
            let cur = self.inflight.load(Ordering::Acquire);
            if cur < max {
                if self
                    .inflight
                    .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return true;
                }
                continue; // lost the race, re-read
            }
            if start.elapsed() >= deadline || self.is_dead() {
                self.note_shed();
                return false;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// One group-fsync pass: persist every shard dirtied since the last
    /// pass. A shard whose fsync fails (for real or via the
    /// `fsync-fail` site) is re-marked dirty so the next pass retries
    /// instead of silently dropping durability.
    fn sync_dirty(&self) -> io::Result<()> {
        if self.crashed.load(Ordering::Acquire) {
            return Ok(()); // a dead daemon syncs nothing
        }
        self.crash_point("fsync-pass");
        let mut synced = 0u64;
        let mut first_err = None;
        for shard in &self.shards {
            if shard.dirty.swap(false, Ordering::AcqRel) {
                if let Some(f) = &self.opts.faults {
                    if f.fire(FaultSite::FsyncFail) {
                        shard.dirty.store(true, Ordering::Release);
                        first_err.get_or_insert(io::Error::other("injected fsync failure"));
                        continue;
                    }
                }
                match shard.store.sync() {
                    Ok(()) => {
                        shard.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
                        synced += 1;
                    }
                    Err(e) => {
                        shard.dirty.store(true, Ordering::Release);
                        first_err.get_or_insert(e);
                    }
                }
            }
        }
        if synced > 0 {
            self.counters.fsync_batches.fetch_add(1, Ordering::Relaxed);
            // Batch size = shards flushed by one group fsync: a
            // measure of how well the interval amortizes sync cost.
            static BATCH: std::sync::OnceLock<&'static oraql_obs::Histogram> =
                std::sync::OnceLock::new();
            BATCH
                .get_or_init(|| oraql_obs::global().histogram("oraql_served_fsync_batch_size"))
                .observe(synced);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn get(&self, key: u64, exe: bool) -> Response {
        let shard = self.shard_of(key);
        shard.counters.lookups.fetch_add(1, Ordering::Relaxed);
        let index = shard.index.read().unwrap_or_else(|p| p.into_inner());
        let found = if exe {
            index.exe.get(&key)
        } else {
            index.dec.get(&key)
        };
        match found {
            Some(&(pass, unique)) => {
                shard.counters.hits.fetch_add(1, Ordering::Relaxed);
                Response::Verdict { pass, unique }
            }
            None => Response::NotFound,
        }
    }

    fn put(&self, key: u64, pass: bool, unique: u64, exe: bool) -> Response {
        let shard = self.shard_of(key);
        let res = if exe {
            shard.store.record_exe(key, pass, unique)
        } else {
            shard.store.record_dec(key, pass, unique)
        };
        if let Err(e) = res {
            return Response::Err(Status::Io, e.to_string());
        }
        // The record is journaled but neither indexed nor acked: a
        // crash here must lose nothing acked (nothing was).
        self.crash_point("put-journaled");
        let mut index = shard.index.write().unwrap_or_else(|p| p.into_inner());
        if exe {
            index.exe.insert(key, (pass, unique));
        } else {
            index.dec.insert(key, (pass, unique));
        }
        drop(index);
        shard.counters.appends.fetch_add(1, Ordering::Relaxed);
        shard.dirty.store(true, Ordering::Release);
        Response::Ok
    }

    fn get_refs(&self, salt: u64) -> Response {
        let shard = self.shard_of(salt);
        shard.counters.lookups.fetch_add(1, Ordering::Relaxed);
        let index = shard.index.read().unwrap_or_else(|p| p.into_inner());
        match index.refs.get(&salt) {
            Some(joined) => {
                shard.counters.hits.fetch_add(1, Ordering::Relaxed);
                Response::Text(joined.clone())
            }
            None => Response::NotFound,
        }
    }

    fn put_refs(&self, salt: u64, refs: &str) -> Response {
        let shard = self.shard_of(salt);
        let outputs: Vec<String> = refs.split(REF_SEP).map(str::to_owned).collect();
        if let Err(e) = shard.store.record_references(salt, &outputs) {
            return Response::Err(Status::Io, e.to_string());
        }
        self.crash_point("put-journaled");
        let mut index = shard.index.write().unwrap_or_else(|p| p.into_inner());
        index.refs.insert(salt, refs.to_string());
        drop(index);
        shard.counters.appends.fetch_add(1, Ordering::Relaxed);
        shard.dirty.store(true, Ordering::Release);
        Response::Ok
    }

    fn compact_all(&self) -> Response {
        let mut lines = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            // The store takes its advisory lock exclusively; a briefly
            // contended shared (append) lock resolves in microseconds,
            // so a couple of retries ride it out.
            let mut last = None;
            for _ in 0..5 {
                match shard.store.compact() {
                    Ok(c) => {
                        last = Some(Ok(c));
                        break;
                    }
                    Err(StoreError::Locked) => {
                        last = Some(Err(StoreError::Locked));
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        last = Some(Err(e));
                        break;
                    }
                }
            }
            match last {
                Some(Ok(c)) => lines.push(format!(
                    "shard {i}: {} records, {} -> {} bytes",
                    c.records, c.bytes_before, c.bytes_after
                )),
                Some(Err(e)) => lines.push(format!("shard {i}: {e}")),
                None => lines.push(format!("shard {i}: not attempted")),
            }
        }
        Response::Text(lines.join("\n"))
    }

    /// Renders the `STATS` text: this connection's counters, then one
    /// line per shard, then server totals. The line shapes here are
    /// documented in `docs/OPERATIONS.md` — change both together.
    fn stats_text(&self, conn: &ConnCounters) -> String {
        let mut out = format!(
            "oraql-served: {} shards in {}, {} acceptors\n",
            self.shards.len(),
            self.dir.display(),
            self.opts.acceptors.max(1)
        );
        out.push_str(&format!(
            "conn: {} requests, {} lookups, {} hits, {} appends, {} B in, {} B out\n",
            conn.requests, conn.lookups, conn.hits, conn.appends, conn.bytes_in, conn.bytes_out
        ));
        for (i, shard) in self.shards.iter().enumerate() {
            let c = &shard.counters;
            let s = shard.store.stats();
            out.push_str(&format!(
                "shard {i}: {} lookups, {} hits, {} appends, {} fsyncs; journal: {} recovered, {} corrupt dropped, {} torn dropped, {} compactions\n",
                c.lookups.load(Ordering::Relaxed),
                c.hits.load(Ordering::Relaxed),
                c.appends.load(Ordering::Relaxed),
                c.fsyncs.load(Ordering::Relaxed),
                s.recovered,
                s.dropped_corrupt,
                s.dropped_torn,
                s.compactions,
            ));
        }
        let g = &self.counters;
        let (mut lookups, mut hits, mut appends) = (0u64, 0u64, 0u64);
        for shard in &self.shards {
            lookups += shard.counters.lookups.load(Ordering::Relaxed);
            hits += shard.counters.hits.load(Ordering::Relaxed);
            appends += shard.counters.appends.load(Ordering::Relaxed);
        }
        out.push_str(&format!(
            "total: {} lookups, {} hits, {} appends, {} fsync batches, {} connections ({} active), {} bad frames, {} shed, {} B in, {} B out",
            lookups,
            hits,
            appends,
            g.fsync_batches.load(Ordering::Relaxed),
            g.connections.load(Ordering::Relaxed),
            g.active.load(Ordering::Relaxed),
            g.bad_frames.load(Ordering::Relaxed),
            g.shed.load(Ordering::Relaxed),
            g.bytes_in.load(Ordering::Relaxed),
            g.bytes_out.load(Ordering::Relaxed),
        ));
        out
    }

    fn dispatch(&self, req: Request, conn: &mut ConnCounters) -> Response {
        conn.requests += 1;
        let started = std::time::Instant::now();
        let op = req.op();
        let resp = self.dispatch_inner(req, conn);
        let (count, micros) = op_metrics(op);
        count.inc();
        micros.observe(started.elapsed().as_micros() as u64);
        resp
    }

    fn dispatch_inner(&self, req: Request, conn: &mut ConnCounters) -> Response {
        match req {
            Request::Ping => Response::Ok,
            Request::GetDec { key } => {
                conn.lookups += 1;
                let r = self.get(key, false);
                if matches!(r, Response::Verdict { .. }) {
                    conn.hits += 1;
                }
                r
            }
            Request::GetExe { key } => {
                conn.lookups += 1;
                let r = self.get(key, true);
                if matches!(r, Response::Verdict { .. }) {
                    conn.hits += 1;
                }
                r
            }
            Request::PutDec { key, pass, unique } => {
                conn.appends += 1;
                self.put(key, pass, unique, false)
            }
            Request::PutExe { key, pass, unique } => {
                conn.appends += 1;
                self.put(key, pass, unique, true)
            }
            Request::GetRefs { salt } => {
                conn.lookups += 1;
                let r = self.get_refs(salt);
                if matches!(r, Response::Text(_)) {
                    conn.hits += 1;
                }
                r
            }
            Request::PutRefs { salt, refs } => {
                conn.appends += 1;
                self.put_refs(salt, &refs)
            }
            Request::Stats => Response::Text(self.stats_text(conn)),
            Request::Sync => match self.sync_dirty() {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(Status::Io, e.to_string()),
            },
            Request::Compact => self.compact_all(),
            // The process-wide registry: this daemon's own request
            // counters and latency histograms, plus everything the
            // embedded `oraql-store` shards published. A scraper polls
            // this op; see docs/OPERATIONS.md § Monitoring.
            Request::Metrics => Response::Text(oraql_obs::global().snapshot().render()),
        }
    }
}

/// Registry handles for one wire op: request counter + latency
/// histogram. Names are static per op, resolved once each.
fn op_metrics(op: Op) -> (&'static oraql_obs::Counter, &'static oraql_obs::Histogram) {
    use std::sync::OnceLock;
    // One slot per op byte value; op bytes start at 0x01.
    static SLOTS: OnceLock<Vec<(&'static oraql_obs::Counter, &'static oraql_obs::Histogram)>> =
        OnceLock::new();
    const NAMES: [(&str, &str); 11] = [
        (
            "oraql_served_requests_ping_total",
            "oraql_served_op_ping_micros",
        ),
        (
            "oraql_served_requests_get_dec_total",
            "oraql_served_op_get_dec_micros",
        ),
        (
            "oraql_served_requests_get_exe_total",
            "oraql_served_op_get_exe_micros",
        ),
        (
            "oraql_served_requests_put_dec_total",
            "oraql_served_op_put_dec_micros",
        ),
        (
            "oraql_served_requests_put_exe_total",
            "oraql_served_op_put_exe_micros",
        ),
        (
            "oraql_served_requests_get_refs_total",
            "oraql_served_op_get_refs_micros",
        ),
        (
            "oraql_served_requests_put_refs_total",
            "oraql_served_op_put_refs_micros",
        ),
        (
            "oraql_served_requests_stats_total",
            "oraql_served_op_stats_micros",
        ),
        (
            "oraql_served_requests_sync_total",
            "oraql_served_op_sync_micros",
        ),
        (
            "oraql_served_requests_compact_total",
            "oraql_served_op_compact_micros",
        ),
        (
            "oraql_served_requests_metrics_total",
            "oraql_served_op_metrics_micros",
        ),
    ];
    let slots = SLOTS.get_or_init(|| {
        let r = oraql_obs::global();
        NAMES
            .iter()
            .map(|&(c, h)| (r.counter(c), r.histogram(h)))
            .collect()
    });
    slots[(op as u8 - 1) as usize]
}

/// Per-connection counters, reported by `STATS` on the same connection.
#[derive(Debug, Default)]
struct ConnCounters {
    requests: u64,
    lookups: u64,
    hits: u64,
    appends: u64,
    bytes_in: u64,
    bytes_out: u64,
}

/// The request id to echo for a raw request payload, whether or not it
/// decodes (a shed or malformed request still gets its id back).
fn req_id_of(payload: &[u8]) -> u64 {
    match Request::decode(payload) {
        Ok((id, _)) => id,
        Err((_, id)) => id,
    }
}

/// Answers the first request on an over-cap connection with `BUSY` and
/// returns (the caller closes). Waiting bounded by `idle_poll` ticks so
/// shutdown is never blocked on a silent peer.
fn shed_conn(core: &Core, conn: &mut Conn) {
    let _ = conn.set_read_timeout(Some(core.opts.idle_poll));
    let deadline = Instant::now() + Duration::from_secs(1);
    while Instant::now() < deadline && !core.is_dead() {
        match read_frame(conn) {
            Ok(Some(payload)) => {
                core.note_shed();
                let frame = Response::Busy.encode(req_id_of(&payload));
                let _ = write_frame(conn, &frame);
                return;
            }
            Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Mutates an about-to-be-written response frame (or suppresses it)
/// according to the wire fault plan. Returns `false` when the
/// connection must be dropped instead of (fully) answering.
fn inject_wire_faults(core: &Core, conn: &mut Conn, frame: &mut [u8]) -> bool {
    let Some(f) = &core.opts.faults else {
        return true;
    };
    if f.fire(FaultSite::ConnReset) {
        return false; // drop without answering: client sees EOF/RST
    }
    if f.fire(FaultSite::ResponseHang) {
        // Sit on the response past the client's read deadline; the
        // client must reclaim the request, not us.
        std::thread::sleep(core.opts.fault_hang);
    } else if f.fire(FaultSite::ResponseDelay) {
        std::thread::sleep(Duration::from_millis(2));
    }
    if f.fire(FaultSite::FrameTorn) {
        // Write a strict prefix, then drop the connection.
        let cut = (frame.len() / 2).max(1);
        let _ = conn.write_all(&frame[..cut]);
        let _ = conn.flush();
        return false;
    }
    if f.fire(FaultSite::FrameGarble) {
        // Flip one payload byte after the checksum was computed; the
        // client's frame checksum must catch it wherever it lands.
        let i = 12 + (f.fired(FaultSite::FrameGarble) as usize) % (frame.len() - 12).max(1);
        let i = i.min(frame.len() - 1);
        frame[i] ^= 0x40;
    }
    true
}

fn serve_conn(core: &Core, mut conn: Conn) {
    core.counters.connections.fetch_add(1, Ordering::Relaxed);
    let active = core.counters.active.fetch_add(1, Ordering::Relaxed) + 1;
    if core.opts.max_conns > 0 && active > core.opts.max_conns as u64 {
        shed_conn(core, &mut conn);
        let _ = conn.flush();
        core.counters.active.fetch_sub(1, Ordering::Relaxed);
        return;
    }
    let _ = conn.set_read_timeout(Some(core.opts.idle_poll));
    let _ = conn.set_write_timeout(Some(core.opts.write_timeout));
    let mut counters = ConnCounters::default();
    loop {
        if core.is_dead() {
            break;
        }
        let payload = match read_frame(&mut conn) {
            Ok(Some(p)) => p,
            Ok(None) => break, // peer hung up cleanly
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // idle poll tick: re-check shutdown
            }
            Err(_) => {
                // Torn frame or dead socket: nothing sane to answer on.
                core.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                break;
            }
        };
        let frame_in = (12 + payload.len()) as u64;
        counters.bytes_in += frame_in;
        core.counters
            .bytes_in
            .fetch_add(frame_in, Ordering::Relaxed);
        core.counters.requests.fetch_add(1, Ordering::Relaxed);
        // The admission slot is held until the response leaves (or the
        // connection breaks): an in-flight request includes its write,
        // so a stalled peer counts against `max_inflight`.
        struct Slot<'a>(Option<&'a Core>);
        impl Drop for Slot<'_> {
            fn drop(&mut self) {
                if let Some(core) = self.0 {
                    core.inflight.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
        let mut slot = Slot(None);
        let (req_id, resp) = match Request::decode(&payload) {
            Ok((req_id, req)) => {
                if core.admit(req.op()) {
                    slot.0 = Some(core);
                    (req_id, core.dispatch(req, &mut counters))
                } else {
                    (req_id, Response::Busy)
                }
            }
            Err((Status::BadVersion, req_id)) => {
                core.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                // Body carries the server's version byte (see PROTOCOL.md).
                (
                    req_id,
                    Response::Err(
                        Status::BadVersion,
                        (crate::protocol::VERSION as char).to_string(),
                    ),
                )
            }
            Err((status, req_id)) => {
                core.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                (req_id, Response::Err(status, String::new()))
            }
        };
        if core.crashed.load(Ordering::Acquire) {
            break; // a dead daemon acks nothing
        }
        let mut frame = resp.encode(req_id);
        if !inject_wire_faults(core, &mut conn, &mut frame) {
            break;
        }
        counters.bytes_out += frame.len() as u64;
        core.counters
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        if write_frame(&mut conn, &frame).is_err() {
            break; // peer vanished mid-response
        }
        // The response is acked on the wire: a crash beyond this point
        // must keep every record the frame acknowledged.
        core.crash_point("post-ack");
    }
    let _ = conn.flush();
    core.counters.active.fetch_sub(1, Ordering::Relaxed);
}

/// A running verdict server. Owns the shards, the acceptor pool, and
/// the group-fsync thread; [`Server::shutdown`] (or `Drop`) tears all
/// of it down and leaves every acked write durable.
pub struct Server {
    core: Arc<Core>,
    addr: Addr,
    /// Acceptors + the fsync thread + every live connection thread.
    /// Connection threads push here as they spawn, so shutdown pops
    /// until empty (the pool.rs drop idiom) rather than iterating a
    /// snapshot.
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    down: bool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("shards", &self.core.shards.len())
            .finish()
    }
}

impl Server {
    /// Opens (or creates) the shard journals under `config.dir`,
    /// replays them into the in-memory index, binds `addr` (use port 0
    /// for an ephemeral TCP port), and spawns the acceptor pool and
    /// fsync thread. On return the server is accepting connections.
    pub fn start(config: &ServerOptions, addr: &str) -> io::Result<Server> {
        std::fs::create_dir_all(&config.dir)?;
        let shards = config.shards.max(1);
        let mut opened = Vec::with_capacity(shards);
        for i in 0..shards {
            let path = config.dir.join(format!("shard-{i:02}.journal"));
            opened.push(Shard::open(path).map_err(io::Error::other)?);
        }
        let listener = Listener::bind(&Addr::parse(addr))?;
        let bound = listener.local_addr()?;
        let core = Arc::new(Core {
            shards: opened,
            counters: ServerCounters::default(),
            shutdown: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            dir: config.dir.clone(),
            opts: config.clone(),
        });
        let handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..core.opts.acceptors.max(1) {
            let l = listener.try_clone()?;
            let c = Arc::clone(&core);
            let hs = Arc::clone(&handles);
            let h = std::thread::Builder::new()
                .name(format!("oraql-served-accept-{i}"))
                .spawn(move || accept_loop(&l, &c, &hs))?;
            lock_ignore_poison(&handles).push(h);
        }
        {
            let c = Arc::clone(&core);
            let interval = config.fsync_interval;
            let h = std::thread::Builder::new()
                .name("oraql-served-fsync".to_string())
                .spawn(move || {
                    // Sleep the interval in short ticks so shutdown is
                    // never blocked behind a long fsync cadence.
                    let tick = interval.min(Duration::from_millis(50));
                    let mut slept = Duration::ZERO;
                    while !c.shutdown.load(Ordering::Acquire) {
                        std::thread::sleep(tick);
                        slept += tick;
                        if slept >= interval {
                            slept = Duration::ZERO;
                            let _ = c.sync_dirty();
                        }
                    }
                })?;
            lock_ignore_poison(&handles).push(h);
        }
        drop(listener);
        Ok(Server {
            core,
            addr: bound,
            handles,
            down: false,
        })
    }

    /// The address the server actually bound, in the grammar
    /// [`Addr::parse`] accepts — hand it straight to a client.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Total records currently indexed across all shards (dec + exe +
    /// refs). Takes each shard's read lock briefly.
    pub fn indexed_records(&self) -> usize {
        self.core
            .shards
            .iter()
            .map(|s| {
                let i = s.index.read().unwrap_or_else(|p| p.into_inner());
                i.dec.len() + i.exe.len() + i.refs.len()
            })
            .sum()
    }

    /// Has a simulated crash-point fired? (Always `false` under
    /// [`CrashMode::Abort`] — an aborted daemon answers nothing.)
    pub fn is_crashed(&self) -> bool {
        self.core.crashed.load(Ordering::Acquire)
    }

    /// Requests shed by admission control or the connection cap.
    pub fn shed_count(&self) -> u64 {
        self.core.counters.shed.load(Ordering::Relaxed)
    }

    /// `(site, occurrences, fired)` rows from the server's fault
    /// injector; empty without a fault plan.
    pub fn fault_summary(&self) -> Vec<(FaultSite, u64, u64)> {
        self.core
            .opts
            .faults
            .as_ref()
            .map(|f| f.summary())
            .unwrap_or_default()
    }

    /// Stops accepting, drains every connection thread, and runs a
    /// final group fsync. Idempotent; also invoked by `Drop`.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> io::Result<()> {
        if self.down {
            return Ok(());
        }
        self.down = true;
        self.core.shutdown.store(true, Ordering::Release);
        // Wake every acceptor blocked in accept(2): one throwaway
        // connection per acceptor thread.
        for _ in 0..self.core.opts.acceptors.max(1) {
            let _ = Conn::connect(&self.addr, Duration::from_millis(200));
        }
        loop {
            let h = lock_ignore_poison(&self.handles).pop();
            match h {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        if let Addr::Unix(p) = &self.addr {
            let _ = std::fs::remove_file(p);
        }
        // A simulated crash skips the final sync — sync_dirty() is a
        // no-op once `crashed` is set, which is the point: the journal
        // holds exactly what the kill left.
        self.core.sync_dirty()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

fn accept_loop(listener: &Listener, core: &Arc<Core>, handles: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        if core.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok(conn) => {
                if core.shutdown.load(Ordering::Acquire) {
                    return; // this was the shutdown wake-up poke
                }
                let c = Arc::clone(core);
                let spawned = std::thread::Builder::new()
                    .name("oraql-served-conn".to_string())
                    .spawn(move || serve_conn(&c, conn));
                match spawned {
                    Ok(h) => lock_ignore_poison(handles).push(h),
                    Err(_) => {
                        // Thread exhaustion: drop the connection; the
                        // client's retry/fallback path handles it.
                    }
                }
            }
            Err(_) => {
                if core.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Transient accept failure (EMFILE, ECONNABORTED):
                // back off briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("oraql_served_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn put_get_roundtrip_and_restart_replay() {
        let dir = scratch("roundtrip");
        let cfg = ServerOptions::new(&dir);
        let server = Server::start(&cfg, "127.0.0.1:0").unwrap();
        let client = Client::new(&server.addr());
        client.ping().unwrap();
        assert_eq!(client.get_dec(7).unwrap(), None);
        client.put_dec(7, true, 42).unwrap();
        assert_eq!(client.get_dec(7).unwrap(), Some((true, 42)));
        client.put_exe(9, false, 0).unwrap();
        assert_eq!(client.get_exe(9).unwrap(), Some((false, 0)));
        client
            .put_refs(3, &["a\n".to_string(), "b\n".to_string()])
            .unwrap();
        assert_eq!(
            client.get_refs(3).unwrap(),
            Some(vec!["a\n".to_string(), "b\n".to_string()])
        );
        client.sync().unwrap();
        server.shutdown().unwrap();
        // A fresh server over the same dir replays the journals.
        let server = Server::start(&cfg, "127.0.0.1:0").unwrap();
        assert_eq!(server.indexed_records(), 3);
        let client = Client::new(&server.addr());
        assert_eq!(client.get_dec(7).unwrap(), Some((true, 42)));
        assert_eq!(client.get_exe(9).unwrap(), Some((false, 0)));
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_compact_and_sharding() {
        let dir = scratch("stats");
        let mut cfg = ServerOptions::new(&dir);
        cfg.shards = 3;
        let server = Server::start(&cfg, "127.0.0.1:0").unwrap();
        let client = Client::new(&server.addr());
        for k in 0..30u64 {
            client.put_dec(k, true, k).unwrap();
        }
        for k in 0..30u64 {
            assert_eq!(client.get_dec(k).unwrap(), Some((true, k)));
        }
        let stats = client.server_stats().unwrap();
        assert!(stats.contains("3 shards"), "{stats}");
        assert!(
            stats.contains("total: 30 lookups, 30 hits, 30 appends"),
            "{stats}"
        );
        // Every shard saw an even share (keys 0..30 mod 3).
        for i in 0..3 {
            assert!(stats.contains(&format!("shard {i}: 10 lookups")), "{stats}");
        }
        let summary = client.server_compact().unwrap();
        assert!(summary.contains("shard 0:"), "{summary}");
        assert!(summary.contains("records"), "{summary}");
        // Compaction preserved the live set.
        for k in 0..30u64 {
            assert_eq!(client.get_dec(k).unwrap(), Some((true, k)));
        }
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_transport() {
        let dir = scratch("unix");
        let sock = dir.join("served.sock");
        let cfg = ServerOptions::new(dir.join("data"));
        let server = Server::start(&cfg, &format!("unix:{}", sock.display())).unwrap();
        let client = Client::new(&server.addr());
        client.put_dec(1, true, 1).unwrap();
        assert_eq!(client.get_dec(1).unwrap(), Some((true, 1)));
        server.shutdown().unwrap();
        assert!(!sock.exists(), "socket file removed on shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_frames_get_error_statuses() {
        use crate::protocol::{frame_sum, read_frame, write_frame, VERSION};
        fn raw_frame(payload: &[u8]) -> Vec<u8> {
            let mut f = Vec::new();
            f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            f.extend_from_slice(&frame_sum(payload).to_le_bytes());
            f.extend_from_slice(payload);
            f
        }
        fn raw_payload(version: u8, op: u8, req_id: u64, body: &[u8]) -> Vec<u8> {
            let mut p = vec![version, op];
            p.extend_from_slice(&req_id.to_le_bytes());
            p.extend_from_slice(body);
            p
        }
        let dir = scratch("malformed");
        let server = Server::start(&ServerOptions::new(&dir), "127.0.0.1:0").unwrap();
        let mut conn = Conn::connect(&Addr::parse(&server.addr()), Duration::from_secs(2)).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Unknown op: the request id still comes back.
        write_frame(&mut conn, &raw_frame(&raw_payload(VERSION, 0xee, 31, &[]))).unwrap();
        let p = read_frame(&mut conn).unwrap().unwrap();
        assert_eq!(p[1], Status::BadOp as u8);
        assert_eq!(u64::from_le_bytes(p[2..10].try_into().unwrap()), 31);
        // Wrong version: body carries the server's version byte.
        write_frame(&mut conn, &raw_frame(&raw_payload(9, 0x01, 32, &[]))).unwrap();
        let p = read_frame(&mut conn).unwrap().unwrap();
        assert_eq!(p[1], Status::BadVersion as u8);
        assert_eq!(u64::from_le_bytes(p[2..10].try_into().unwrap()), 32);
        // Truncated body.
        write_frame(&mut conn, &raw_frame(&raw_payload(VERSION, 0x02, 33, &[1]))).unwrap();
        let p = read_frame(&mut conn).unwrap().unwrap();
        assert_eq!(p[1], Status::BadFrame as u8);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_control_sheds_busy_under_saturation() {
        use oraql_faults::{FaultPlan, Rate};
        let dir = scratch("admission");
        let mut cfg = ServerOptions::new(&dir);
        // One execution slot, a tiny admission deadline, and a fault
        // plan that hangs every response long enough to hold the slot.
        cfg.max_inflight = 1;
        cfg.request_deadline = Duration::from_millis(30);
        cfg.fault_hang = Duration::from_millis(600);
        cfg.faults = Some(Arc::new(FaultInjector::new(
            FaultPlan::quiet(1).with_rate(FaultSite::ResponseHang, Rate::new(1, 2)),
        )));
        let server = Server::start(&cfg, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let mut saw_busy = false;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let addr = addr.clone();
                handles.push(s.spawn(move || {
                    let client = Client::with_timeouts(
                        &addr,
                        Duration::from_secs(2),
                        Duration::from_millis(10),
                    );
                    let mut busy = 0u32;
                    for k in 0..6u64 {
                        if let Err(crate::client::ClientError::Busy) = client.get_dec(k) {
                            busy += 1;
                        }
                    }
                    busy
                }));
            }
            for h in handles {
                if h.join().unwrap() > 0 {
                    saw_busy = true;
                }
            }
        });
        assert!(saw_busy, "saturated single-slot server never shed");
        assert!(server.shed_count() > 0);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn connection_cap_sheds_excess_connections() {
        let dir = scratch("conncap");
        let mut cfg = ServerOptions::new(&dir);
        cfg.max_conns = 1;
        let server = Server::start(&cfg, "127.0.0.1:0").unwrap();
        // First connection occupies the only slot...
        let c1 = Client::new(&server.addr());
        c1.ping().unwrap();
        // ...so a second connection's first request is answered BUSY.
        let c2 = Client::new(&server.addr());
        assert!(matches!(c2.ping(), Err(crate::client::ClientError::Busy)));
        assert!(server.shed_count() >= 1);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulated_crash_drops_conns_and_skips_final_sync() {
        use oraql_faults::{FaultPlan, Rate};
        let dir = scratch("simcrash");
        let mut cfg = ServerOptions::new(&dir);
        // Crash deterministically on the first crash-point passage.
        cfg.crash_mode = CrashMode::Simulate;
        cfg.fsync_interval = Duration::from_secs(3600); // keep the timer out of it
        cfg.faults = Some(Arc::new(FaultInjector::new(
            FaultPlan::quiet(7).with_rate(FaultSite::CrashPoint, Rate::always()),
        )));
        let server = Server::start(&cfg, "127.0.0.1:0").unwrap();
        let client = Client::with_timeouts(
            &server.addr(),
            Duration::from_millis(500),
            Duration::from_millis(50),
        );
        // The put journals, then hits `put-journaled`, which "kills"
        // the daemon: no ack ever arrives.
        assert!(client.put_dec(1, true, 1).is_err());
        assert!(server.is_crashed());
        server.shutdown().unwrap();
        // Restart over the same dir: the journaled-but-unacked record
        // is allowed to be present (it was written before the crash
        // point) — what matters is the journal replays cleanly.
        let server = Server::start(&ServerOptions::new(&dir), "127.0.0.1:0").unwrap();
        let client = Client::new(&server.addr());
        client.ping().unwrap();
        client.put_dec(2, false, 9).unwrap();
        assert_eq!(client.get_dec(2).unwrap(), Some((false, 9)));
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
