#!/usr/bin/env sh
# Tier-1 gate (see README.md "CI / tier-1 gate"): offline release build,
# full test suite, formatting, and lints with warnings denied. Run from
# the repo root; exits non-zero on the first failure.
set -eux

cargo build --release --offline
cargo test -q --offline
# The differential suite is the equivalence gate for the two interpreter
# modes (tree-walk reference vs. pre-decoded executor); run it by name so
# a filtered `cargo test` invocation can never silently skip it.
cargo test -q --offline --test differential_interp
# The persistent verdict store's robustness gates (journal recovery,
# warm-run determinism), likewise by name.
cargo test -q --offline -p oraql-store
cargo test -q --offline --test store_persistence
# The probe sandbox's robustness gates: the fault-injection harness
# itself and the chaos suite over real workloads, likewise by name.
cargo test -q --offline -p oraql-faults
cargo test -q --offline --test chaos_faults
# The verdict server's gates: protocol/server/client unit suites and the
# end-to-end tier tests (warm replay, multi-tenant, fallback, recovery,
# protocol-doc drift), likewise by name.
cargo test -q --offline -p oraql-served
cargo test -q --offline --test served_roundtrip
cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings

# Warm-cache smoke: the same case twice against one journal — the
# second run must answer at least one probe from the store.
STORE_TMP="$(mktemp -d)"
trap 'rm -rf "$STORE_TMP"' EXIT
target/release/oraql -b testsnap --store "$STORE_TMP/verdicts.journal" > /dev/null
target/release/oraql -b testsnap --store "$STORE_TMP/verdicts.journal" \
    | grep -E 'store: [1-9][0-9]* hits'

# Served smoke: a daemon on an ephemeral port, the same case twice
# through --server — the second run must answer probes remotely.
SERVED_TMP="$(mktemp -d)"
SERVED_PID=""
trap 'rm -rf "$STORE_TMP" "$SERVED_TMP"; [ -n "$SERVED_PID" ] && kill "$SERVED_PID" 2>/dev/null || true' EXIT
target/release/oraql-served serve --dir "$SERVED_TMP/data" --listen 127.0.0.1:0 \
    > "$SERVED_TMP/log" &
SERVED_PID=$!
for _ in $(seq 1 100); do
    grep -q 'listening on' "$SERVED_TMP/log" 2>/dev/null && break
    sleep 0.1
done
SERVED_ADDR="$(sed -n 's/.*listening on \([^,]*\),.*/\1/p' "$SERVED_TMP/log")"
target/release/oraql-served ping "$SERVED_ADDR"
target/release/oraql -b testsnap --server "$SERVED_ADDR" > /dev/null
target/release/oraql -b testsnap --server "$SERVED_ADDR" \
    | grep -E 'client: [1-9][0-9]* hits'
kill "$SERVED_PID"
SERVED_PID=""

# Chaos smoke: the whole suite under a fixed fault-plan seed matrix,
# byte-identical across two runs, plus a parallel poisoning pass.
sh scripts/chaos.sh
