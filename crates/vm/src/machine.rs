//! Mini machine backend: block linearization, live intervals, linear-scan
//! register allocation and stack-frame layout.
//!
//! This produces the *static* code properties the paper reports:
//! `# machine instructions generated` (Fig. 6, "asm printer"),
//! `# register spills inserted` (Fig. 6, "register allocation") and the
//! per-kernel `# registers` / `# bytes stack frame` of Fig. 7. Better
//! alias information changes these numbers indirectly: eliminated and
//! hoisted loads change live ranges and therefore pressure, spills and
//! instruction counts — the same indirect mechanism the paper observes.

use oraql_ir::inst::{Inst, InstId};
use oraql_ir::meta::Target;
use oraql_ir::module::{FunctionId, Module};
use oraql_ir::value::Value;

/// Register-file size modelled for host code (x86-64 GPR-ish).
pub const HOST_REGS: u32 = 16;
/// Register-file size modelled for device code. Real CUDA allows up to
/// 255 registers per thread; we model the register budget of a
/// high-occupancy launch (and our kernels are miniature), so a smaller
/// file keeps spill behaviour observable at this scale.
pub const DEVICE_REGS: u32 = 24;

/// Static properties of one lowered function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSummary {
    /// Function name.
    pub name: String,
    /// Number of physical registers used (peak live pressure, capped by
    /// the register file).
    pub registers: u32,
    /// Stack frame size in bytes: allocas plus spill slots.
    pub stack_bytes: u64,
    /// Number of machine instructions after expansion, including spill
    /// code.
    pub machine_insts: u64,
    /// Register spills inserted.
    pub spills: u32,
}

/// Why lowering a function failed. Lowering runs on every probe
/// variant, including adversarially miscompiled ones, so structural
/// problems must surface as errors rather than panics that would kill
/// the driver's worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// Structurally malformed IR (out-of-range instruction or block
    /// ids).
    BadIr(String),
    /// Linear scan lost track of the farthest-end interval while
    /// selecting a spill candidate (an allocator invariant violation).
    SpillSelection {
        /// Function being lowered.
        name: String,
    },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::BadIr(s) => write!(f, "malformed IR: {s}"),
            LowerError::SpillSelection { name } => {
                write!(f, "spill selection lost the farthest interval in {name}")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Expansion factor of one IR instruction into machine instructions.
fn expansion(inst: &Inst) -> u64 {
    match inst {
        Inst::Removed | Inst::Alloca { .. } => 0, // folded into the frame
        Inst::Phi { .. } => 1,                    // a move after critical-edge splitting
        Inst::Select { .. } => 2,                 // cmp + cmov
        Inst::Call { args, .. } => 1 + args.len() as u64,
        Inst::Print { args, .. } => 2 + args.len() as u64,
        Inst::Memcpy { .. } => 4,
        Inst::CondBr { .. } => 2,
        _ => 1,
    }
}

/// Lowers `fid` and reports its static machine properties.
///
/// The register budget defaults by target ([`HOST_REGS`] /
/// [`DEVICE_REGS`]); pass `Some(k)` to override (used by tests).
/// Malformed IR yields a [`LowerError`] instead of panicking.
pub fn lower_function(
    m: &Module,
    fid: FunctionId,
    regs: Option<u32>,
) -> Result<MachineSummary, LowerError> {
    let f = m
        .get_func(fid)
        .ok_or_else(|| LowerError::BadIr(format!("missing function f{}", fid.0)))?;
    let k = regs.unwrap_or(match f.target {
        Target::Host => HOST_REGS,
        Target::Device => DEVICE_REGS,
    });

    // 0. Validate every id the lowering will index with, so the passes
    //    below can use plain indexing on a known-consistent function.
    for (b, block) in f.blocks.iter().enumerate() {
        for &id in &block.insts {
            let inst = f.get_inst(id).ok_or_else(|| {
                LowerError::BadIr(format!(
                    "instruction id %{} out of range in {} bb{}",
                    id.0, f.name, b
                ))
            })?;
            if let Inst::Phi { incoming, .. } = inst {
                for (bb, _) in incoming {
                    if bb.0 as usize >= f.blocks.len() {
                        return Err(LowerError::BadIr(format!(
                            "phi %{} of {} references missing block bb{}",
                            id.0, f.name, bb.0
                        )));
                    }
                }
            }
            let mut operand_err = None;
            inst.for_each_operand(|v| {
                if operand_err.is_some() {
                    return;
                }
                match v {
                    Value::Inst(i) if i.0 as usize >= f.insts.len() => {
                        operand_err = Some(format!(
                            "instruction id %{} out of range in {} bb{}",
                            i.0, f.name, b
                        ));
                    }
                    Value::Arg(a) if a as usize >= f.params.len() => {
                        operand_err =
                            Some(format!("argument {} out of range in {} bb{}", a, f.name, b));
                    }
                    _ => {}
                }
            });
            if let Some(msg) = operand_err {
                return Err(LowerError::BadIr(msg));
            }
        }
    }

    // 1. Linearize: position of every live instruction in block order.
    let mut pos_of = vec![usize::MAX; f.insts.len()];
    let mut order: Vec<InstId> = Vec::new();
    for block in &f.blocks {
        for &id in &block.insts {
            pos_of[id.0 as usize] = order.len();
            order.push(id);
        }
    }
    let block_end: Vec<usize> = f
        .blocks
        .iter()
        .map(|b| b.insts.last().map(|&i| pos_of[i.0 as usize]).unwrap_or(0))
        .collect();

    // 2. Live intervals [def, last_use] per value (args def at 0). A use
    //    inside a phi is charged at the end of the incoming block, which
    //    approximates liveness across back edges.
    let n_vals = f.insts.len() + f.params.len();
    let val_index = |v: Value| -> Option<usize> {
        match v {
            Value::Inst(i) => Some(i.0 as usize),
            Value::Arg(a) => Some(f.insts.len() + a as usize),
            _ => None,
        }
    };
    let mut start = vec![usize::MAX; n_vals];
    let mut end = vec![0usize; n_vals];
    for a in 0..f.params.len() {
        start[f.insts.len() + a] = 0;
    }
    for &id in &order {
        let p = pos_of[id.0 as usize];
        let inst = f.inst(id);
        if inst.result_ty().is_some() {
            let vi = id.0 as usize;
            start[vi] = start[vi].min(p);
            end[vi] = end[vi].max(p);
        }
        match inst {
            Inst::Phi { incoming, .. } => {
                for (bb, v) in incoming {
                    if let Some(vi) = val_index(*v) {
                        let use_pos = block_end[bb.0 as usize];
                        end[vi] = end[vi].max(use_pos);
                        start[vi] = start[vi].min(use_pos);
                    }
                }
            }
            _ => {
                inst.for_each_operand(|v| {
                    if let Some(vi) = val_index(v) {
                        end[vi] = end[vi].max(p);
                        start[vi] = start[vi].min(p);
                    }
                });
            }
        }
    }

    // 3. Linear scan: peak pressure and farthest-end spilling.
    let mut intervals: Vec<(usize, usize)> = (0..n_vals)
        .filter(|&i| start[i] != usize::MAX && end[i] >= start[i])
        .map(|i| (start[i], end[i]))
        .collect();
    intervals.sort_unstable();
    let mut active: Vec<usize> = Vec::new(); // interval end positions
    let mut peak: u32 = 0;
    let mut spills: u32 = 0;
    for &(s, e) in &intervals {
        active.retain(|&ae| ae >= s);
        if active.len() as u32 == k {
            // Spill the interval with the farthest end (it, or us).
            let far = active.iter().copied().max().unwrap_or(e).max(e);
            spills += 1;
            if far != e {
                // Evict the farthest and take its place. `far` was
                // taken from `active` (it differs from `e`, so the
                // max() chain picked an active end); its absence means
                // the allocator state is corrupt, which must be an
                // error, not a panic.
                let idx = active.iter().position(|&ae| ae == far).ok_or_else(|| {
                    LowerError::SpillSelection {
                        name: f.name.clone(),
                    }
                })?;
                active.remove(idx);
                active.push(e);
            }
        } else {
            active.push(e);
        }
        peak = peak.max(active.len() as u32);
    }

    // 4. Frame layout: allocas (16-byte aligned each) plus 8-byte spill
    //    slots.
    let mut frame: u64 = 0;
    for id in f.live_insts() {
        if let Inst::Alloca { size, .. } = f.inst(id) {
            frame += (size + 15) & !15;
        }
    }
    frame += 8 * spills as u64;

    // 5. Instruction count with spill code (a store at the spill, a
    //    reload per later use — approximated as 2 per spill).
    let mut insts: u64 = 0;
    for &id in &order {
        insts += expansion(f.inst(id));
    }
    insts += 2 * spills as u64;

    Ok(MachineSummary {
        name: f.name.clone(),
        registers: peak.min(k),
        stack_bytes: frame,
        machine_insts: insts,
        spills,
    })
}

/// Lowers every function of a target and sums machine instructions —
/// the "asm printer: # machine instructions generated" statistic.
/// Functions that fail to lower contribute nothing (their miscompile
/// surfaces through the runtime verification channel instead).
pub fn module_machine_insts(m: &Module, target: Target) -> u64 {
    m.funcs_for_target(target)
        .filter_map(|fid| lower_function(m, fid, None).ok())
        .map(|s| s.machine_insts)
        .sum()
}

/// Total spills across all functions of a target — the "register
/// allocation: # register spills inserted" statistic.
pub fn module_spills(m: &Module, target: Target) -> u64 {
    m.funcs_for_target(target)
        .filter_map(|fid| lower_function(m, fid, None).ok())
        .map(|s| s.spills as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Ty, Value};

    #[test]
    fn small_function_uses_few_registers() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        let p = b.arg(0);
        let x = b.load(Ty::F64, p);
        let y = b.fadd(x, Value::const_f64(1.0));
        b.store(Ty::F64, y, p);
        b.ret(None);
        let id = b.finish();
        let s = lower_function(&m, id, None).unwrap();
        assert!(s.registers <= 4, "{s:?}");
        assert_eq!(s.spills, 0);
        assert_eq!(s.stack_bytes, 0);
        assert!(s.machine_insts >= 4);
    }

    #[test]
    fn high_pressure_spills() {
        // 24 values all live simultaneously with only 8 registers.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], Some(Ty::I64));
        let p = b.arg(0);
        let vals: Vec<Value> = (0..24)
            .map(|i| {
                let a = b.gep(p, 8 * i);
                b.load(Ty::I64, a)
            })
            .collect();
        // Use them all at the end so every interval spans the sums.
        let mut acc = vals[0];
        for v in &vals[1..] {
            acc = b.add(acc, *v);
        }
        b.ret(Some(acc));
        let id = b.finish();
        let s = lower_function(&m, id, Some(8)).unwrap();
        assert!(s.spills > 0, "{s:?}");
        assert_eq!(s.registers, 8);
        assert!(s.stack_bytes >= 8 * s.spills as u64);
    }

    #[test]
    fn allocas_count_toward_frame() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![], None);
        b.alloca(100, "buf"); // rounds to 112
        b.ret(None);
        let id = b.finish();
        let s = lower_function(&m, id, None).unwrap();
        assert_eq!(s.stack_bytes, 112);
    }

    #[test]
    fn eliminating_a_load_reduces_machine_insts() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], Some(Ty::I64));
        let p = b.arg(0);
        let l1 = b.load(Ty::I64, p);
        let l2 = b.load(Ty::I64, p);
        let s = b.add(l1, l2);
        b.ret(Some(s));
        let id = b.finish();
        let before = lower_function(&m, id, None).unwrap().machine_insts;
        // Simulate GVN: replace l2 with l1 and delete the second load.
        let f = m.func_mut(id);
        let l2_id = f.blocks[0].insts[1];
        f.replace_all_uses(Value::Inst(l2_id), l1);
        f.remove_inst(l2_id);
        let after = lower_function(&m, id, None).unwrap().machine_insts;
        assert_eq!(after, before - 1);
    }

    #[test]
    fn device_default_register_file() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "k", vec![Ty::Ptr], None);
        b.set_target(Target::Device);
        b.ret(None);
        let id = b.finish();
        // Just exercises the device path.
        let s = lower_function(&m, id, None).unwrap();
        assert_eq!(s.spills, 0);
    }
}
