//! Use case 1 from the paper: **guided source annotation**.
//!
//! A developer is willing to add a few `restrict` annotations but not
//! to blanket-annotate every pointer (annotations carry maintenance
//! cost: the invariant has to be preserved forever). ORAQL tells them
//! *which* pointer pairs matter.
//!
//! This example builds a kernel with four pointer parameters, runs
//! ORAQL to find which queries are answered optimistically *and*
//! actually enable transformations, then applies `noalias` to exactly
//! those parameters and shows the annotated build — compiled with the
//! ordinary conservative pipeline, no ORAQL — recovers the same
//! performance.
//!
//! ```text
//! cargo run --release --example annotation_tuning
//! ```

use oraql_suite::ir::builder::FunctionBuilder;
use oraql_suite::ir::{Module, Ty, Value};
use oraql_suite::oraql::compile::{compile, CompileOptions};
use oraql_suite::oraql::{Driver, DriverOptions, TestCase};
use oraql_suite::vm::Interpreter;

const N: i64 = 64;

/// saxpy-like kernel over four pointer params. `annotate` marks the
/// parameters `noalias` (the `restrict` annotation).
fn build(annotate: bool) -> Module {
    let mut m = Module::new("annotation-tuning");
    let kern = {
        let mut b = FunctionBuilder::new(
            &mut m,
            "stencil",
            vec![Ty::Ptr, Ty::Ptr, Ty::Ptr, Ty::Ptr],
            None,
        );
        b.set_src_file("stencil.c");
        if annotate {
            for i in 0..4 {
                b.set_noalias(i, true);
            }
        }
        let a = b.arg(0);
        let w = b.arg(1);
        let x = b.arg(2);
        let out = b.arg(3);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(N), |b, i| {
            // The weight load is loop-invariant — hoistable only when
            // the out-stores provably don't clobber it.
            let wv = b.load(Ty::F64, w);
            let ai = b.gep_scaled(a, i, 8, 0);
            let av = b.load(Ty::F64, ai);
            let xi = b.gep_scaled(x, i, 8, 0);
            let xv = b.load(Ty::F64, xi);
            let p = b.fmul(av, wv);
            let s = b.fadd(p, xv);
            let oi = b.gep_scaled(out, i, 8, 0);
            b.store(Ty::F64, s, oi);
        });
        b.ret(None);
        b.finish()
    };
    let g = m.add_global("buffers", 8 * (3 * N as u64 + 1), vec![], false);
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    b.set_src_file("driver.c");
    let a = b.gep(Value::Global(g), 0);
    let w = b.gep(Value::Global(g), 8 * N);
    let x = b.gep(Value::Global(g), 8 * (N + 1));
    let out = b.gep(Value::Global(g), 8 * (2 * N + 1));
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(N), |b, i| {
        let fi = b.si_to_fp(i);
        let ai = b.gep_scaled(a, i, 8, 0);
        b.store(Ty::F64, fi, ai);
        let xi = b.gep_scaled(x, i, 8, 0);
        let half = b.fmul(fi, Value::const_f64(0.5));
        b.store(Ty::F64, half, xi);
    });
    b.store(Ty::F64, Value::const_f64(3.0), w);
    b.call(kern, vec![a, w, x, out], None);
    // Checksum.
    let acc = b.alloca(8, "acc");
    b.store(Ty::F64, Value::const_f64(0.0), acc);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(N), |b, i| {
        let oi = b.gep_scaled(out, i, 8, 0);
        let v = b.load(Ty::F64, oi);
        let c = b.load(Ty::F64, acc);
        let s = b.fadd(c, v);
        b.store(Ty::F64, s, acc);
    });
    let fin = b.load(Ty::F64, acc);
    b.print("checksum={}", vec![fin]);
    b.ret(None);
    b.finish();
    m
}

fn main() {
    // Step 1: how fast is the plain (unannotated, conservative) build?
    let plain = compile(&|| build(false), &CompileOptions::baseline());
    let plain_run = Interpreter::run_main(&plain.module).unwrap();

    // Step 2: ORAQL finds the optimal alias information.
    let case = TestCase::new("stencil", || build(false));
    let r = Driver::run(&case, DriverOptions::default()).expect("driver");
    println!(
        "ORAQL: fully optimistic = {}, {} optimistic queries, {} pessimistic",
        r.fully_optimistic, r.oraql.unique_optimistic, r.oraql.unique_pessimistic
    );
    println!(
        "potential: {} insts (plain) -> {} insts (perfect alias info)",
        plain_run.stats.total_insts(),
        r.final_run.stats.total_insts()
    );

    // Step 3: all optimistic answers were in `stencil`, whose pointers
    // are its four parameters — annotate them `restrict` and rebuild
    // WITHOUT ORAQL.
    let annotated = compile(&|| build(true), &CompileOptions::baseline());
    let annotated_run = Interpreter::run_main(&annotated.module).unwrap();
    println!(
        "annotated (restrict, no ORAQL): {} insts",
        annotated_run.stats.total_insts()
    );

    // The annotation must preserve the output...
    assert_eq!(plain_run.stdout, annotated_run.stdout);
    // ...and recover (essentially all of) the ORAQL-discovered gain.
    assert!(annotated_run.stats.total_insts() < plain_run.stats.total_insts());
    let gap_oraql = plain_run.stats.total_insts() - r.final_run.stats.total_insts();
    let gap_annot = plain_run.stats.total_insts() - annotated_run.stats.total_insts();
    println!("gain: annotation recovers {gap_annot} of {gap_oraql} instructions ORAQL identified");
    assert!(
        gap_annot * 10 >= gap_oraql * 8,
        "annotation should recover >= 80%"
    );
    println!("annotation_tuning OK");
}
