//! `oraql gen` — the generated-corpus subcommand.
//!
//! ```text
//! oraql gen --plan "seed=42,cases=1000,motifs=red+csr,per=3" [--out DIR]
//!           [--run] [--jobs N] [--speculate-depth N] [--no-gate]
//!           [--fault-plan SPEC] [--probe-deadline-ms N] [--max-tests N]
//!           [--server ADDR]
//! ```
//!
//! With `--out` the corpus is materialized as driver-ready `.conf`
//! files plus a `MANIFEST.txt` (byte-identical per plan — CI diffs a
//! regeneration against the first write). With `--run` the whole
//! corpus goes through `run_suite` with the ground-truth soundness
//! gate attached (disable with `--no-gate`): any case whose final
//! verdicts keep optimism on a genuinely-aliasing labelled pair fails
//! the run. With neither, the plan is summarized without side effects.
//! `--server` attaches a verdict-server client as the run's third
//! cache tier (same semantics as the main CLI's `--server`), which is
//! how CI drives a generated ground-truth corpus through a live
//! daemon under wire chaos.

use std::sync::Arc;

use oraql::truth::TruthReport;
use oraql::DriverOptions;
use oraql_gen::{suite, write_corpus, GenPlan};

fn gen_usage() -> i32 {
    eprintln!(
        "usage: oraql gen --plan \"seed=S,cases=N,motifs=red+outlined+aos+csr+halo,per=K\"\n                \
         [--out <dir>] [--run] [--jobs N] [--speculate-depth N] [--no-gate]\n                \
         [--fault-plan <spec>] [--probe-deadline-ms N] [--max-tests N] [--server <addr>]"
    );
    2
}

macro_rules! bail {
    ($($arg:tt)*) => {{
        eprintln!($($arg)*);
        return 2;
    }};
}

/// Entry point for `oraql gen ...`; returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let mut plan_spec: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut run = false;
    let mut gate = true;
    let mut opts = DriverOptions::default();
    let mut fault_plan: Option<String> = None;
    let mut probe_deadline_ms: u64 = 0;
    let mut server_addr: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match flag {
            "--help" | "-h" => return gen_usage(),
            "--plan" => match value(&mut i) {
                Some(v) => plan_spec = Some(v),
                None => bail!("missing value for --plan"),
            },
            "--out" => match value(&mut i) {
                Some(v) => out_dir = Some(v),
                None => bail!("missing value for --out"),
            },
            "--run" => run = true,
            "--no-gate" => gate = false,
            "--jobs" | "-j" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => opts.jobs = n,
                _ => bail!("bad --jobs: expected an integer >= 1"),
            },
            "--speculate-depth" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => opts.speculate_depth = n,
                None => bail!("bad --speculate-depth: expected an integer"),
            },
            "--max-tests" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => opts.max_tests = n,
                None => bail!("bad --max-tests: expected an integer"),
            },
            "--fault-plan" => match value(&mut i) {
                Some(v) => fault_plan = Some(v),
                None => bail!("missing value for --fault-plan"),
            },
            "--probe-deadline-ms" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => probe_deadline_ms = n,
                None => bail!("bad --probe-deadline-ms: expected an integer"),
            },
            "--server" => match value(&mut i) {
                Some(v) => server_addr = Some(v),
                None => bail!("missing value for --server"),
            },
            other => bail!("unknown flag {other:?} for oraql gen (try --help)"),
        }
        i += 1;
    }

    let Some(spec) = plan_spec else {
        return gen_usage();
    };
    let plan = match GenPlan::parse(&spec) {
        Ok(p) => p,
        Err(e) => bail!("bad --plan: {e}"),
    };
    if let Some(spec) = &fault_plan {
        let fp = match oraql::FaultPlan::parse(spec) {
            Ok(p) => p,
            Err(e) => bail!("bad --fault-plan: {e}"),
        };
        oraql::faults::quiet_injected_panics();
        opts.faults = Some(Arc::new(oraql::FaultInjector::new(fp)));
    }
    if probe_deadline_ms > 0 {
        opts.probe_deadline = Some(std::time::Duration::from_millis(probe_deadline_ms));
    }
    if let Some(addr) = &server_addr {
        opts.server = Some(Arc::new(oraql::served::Client::new(addr)));
    }

    println!("plan: {}", plan.render());
    if let Some(dir) = &out_dir {
        match write_corpus(&plan, std::path::Path::new(dir)) {
            Ok(s) => {
                let (no, may, must) = s.labels;
                println!(
                    "corpus: {} cases written to {dir} | labels: no={no} may={may} must={must}",
                    s.cases
                );
            }
            Err(e) => bail!("cannot write corpus to {dir}: {e}"),
        }
    }

    let (cases, truth) = suite(&plan);
    let (no, may, must) = truth.counts();
    println!(
        "cases: {} | labelled pairs: {} (no={no} may={may} must={must})",
        cases.len(),
        truth.len()
    );
    if !run {
        return 0;
    }

    if gate {
        opts.ground_truth = Some(Arc::new(truth));
    }
    let results = oraql::run_suite(&cases, &opts);
    let mut failed = 0usize;
    let mut fully_optimistic = 0usize;
    let mut total = TruthReport::default();
    for (case, result) in cases.iter().zip(&results) {
        match result {
            Ok(r) => {
                fully_optimistic += r.fully_optimistic as usize;
                if let Some(t) = &r.truth {
                    total.absorb(t);
                }
            }
            Err(e) => {
                failed += 1;
                eprintln!("{}: driver failed: {e}", case.name);
            }
        }
    }
    println!(
        "suite: {} ok, {failed} failed, {fully_optimistic} fully optimistic (jobs={})",
        results.len() - failed,
        opts.jobs
    );
    if gate {
        println!("ground truth: {total}");
    }
    if let Some(client) = &opts.server {
        println!("server {}: {}", client.addr(), client.stats());
    }
    if failed > 0 {
        1
    } else {
        0
    }
}
