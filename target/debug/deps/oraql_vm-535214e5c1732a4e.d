/root/repo/target/debug/deps/oraql_vm-535214e5c1732a4e.d: crates/vm/src/lib.rs crates/vm/src/decode.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/rtval.rs

/root/repo/target/debug/deps/liboraql_vm-535214e5c1732a4e.rlib: crates/vm/src/lib.rs crates/vm/src/decode.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/rtval.rs

/root/repo/target/debug/deps/liboraql_vm-535214e5c1732a4e.rmeta: crates/vm/src/lib.rs crates/vm/src/decode.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/rtval.rs

crates/vm/src/lib.rs:
crates/vm/src/decode.rs:
crates/vm/src/interp.rs:
crates/vm/src/machine.rs:
crates/vm/src/memory.rs:
crates/vm/src/rtval.rs:
