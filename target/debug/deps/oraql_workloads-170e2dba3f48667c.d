/root/repo/target/debug/deps/oraql_workloads-170e2dba3f48667c.d: crates/workloads/src/lib.rs crates/workloads/src/gridmini.rs crates/workloads/src/lulesh.rs crates/workloads/src/minife.rs crates/workloads/src/minigmg.rs crates/workloads/src/quicksilver.rs crates/workloads/src/testsnap.rs crates/workloads/src/toolkit.rs crates/workloads/src/xsbench.rs

/root/repo/target/debug/deps/liboraql_workloads-170e2dba3f48667c.rlib: crates/workloads/src/lib.rs crates/workloads/src/gridmini.rs crates/workloads/src/lulesh.rs crates/workloads/src/minife.rs crates/workloads/src/minigmg.rs crates/workloads/src/quicksilver.rs crates/workloads/src/testsnap.rs crates/workloads/src/toolkit.rs crates/workloads/src/xsbench.rs

/root/repo/target/debug/deps/liboraql_workloads-170e2dba3f48667c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gridmini.rs crates/workloads/src/lulesh.rs crates/workloads/src/minife.rs crates/workloads/src/minigmg.rs crates/workloads/src/quicksilver.rs crates/workloads/src/testsnap.rs crates/workloads/src/toolkit.rs crates/workloads/src/xsbench.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gridmini.rs:
crates/workloads/src/lulesh.rs:
crates/workloads/src/minife.rs:
crates/workloads/src/minigmg.rs:
crates/workloads/src/quicksilver.rs:
crates/workloads/src/testsnap.rs:
crates/workloads/src/toolkit.rs:
crates/workloads/src/xsbench.rs:
