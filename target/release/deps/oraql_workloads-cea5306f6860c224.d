/root/repo/target/release/deps/oraql_workloads-cea5306f6860c224.d: crates/workloads/src/lib.rs crates/workloads/src/gridmini.rs crates/workloads/src/lulesh.rs crates/workloads/src/minife.rs crates/workloads/src/minigmg.rs crates/workloads/src/quicksilver.rs crates/workloads/src/testsnap.rs crates/workloads/src/toolkit.rs crates/workloads/src/xsbench.rs

/root/repo/target/release/deps/liboraql_workloads-cea5306f6860c224.rlib: crates/workloads/src/lib.rs crates/workloads/src/gridmini.rs crates/workloads/src/lulesh.rs crates/workloads/src/minife.rs crates/workloads/src/minigmg.rs crates/workloads/src/quicksilver.rs crates/workloads/src/testsnap.rs crates/workloads/src/toolkit.rs crates/workloads/src/xsbench.rs

/root/repo/target/release/deps/liboraql_workloads-cea5306f6860c224.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gridmini.rs crates/workloads/src/lulesh.rs crates/workloads/src/minife.rs crates/workloads/src/minigmg.rs crates/workloads/src/quicksilver.rs crates/workloads/src/testsnap.rs crates/workloads/src/toolkit.rs crates/workloads/src/xsbench.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gridmini.rs:
crates/workloads/src/lulesh.rs:
crates/workloads/src/minife.rs:
crates/workloads/src/minigmg.rs:
crates/workloads/src/quicksilver.rs:
crates/workloads/src/testsnap.rs:
crates/workloads/src/toolkit.rs:
crates/workloads/src/xsbench.rs:
