//! The verification harness (paper §IV-C).
//!
//! Before probing, the user obtains one or more reference outputs from a
//! baseline compilation. Benchmarks print figures of merit and
//! self-diagnosing checksums; some lines (run times, simulated cycle
//! counts) legitimately vary between compilations, so the verifier
//! accepts *ignore patterns*: a line pair where both sides match the
//! same pattern is accepted regardless of the differing values.

use crate::textpat::Pattern;

/// Why verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mismatch {
    /// The program trapped or did not run.
    ExecutionFailed(String),
    /// Output differs from every reference; carries the first diverging
    /// line of the closest reference.
    OutputDiffers {
        /// 1-based line number of the first difference.
        line: usize,
        /// Expected line (from the reference).
        expected: String,
        /// Actual line.
        actual: String,
    },
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mismatch::ExecutionFailed(e) => write!(f, "execution failed: {e}"),
            Mismatch::OutputDiffers {
                line,
                expected,
                actual,
            } => write!(
                f,
                "output differs at line {line}: expected {expected:?}, got {actual:?}"
            ),
        }
    }
}

/// The verifier: reference outputs plus ignore patterns.
#[derive(Debug, Clone)]
pub struct Verifier {
    references: Vec<String>,
    ignore: Vec<Pattern>,
}

impl Verifier {
    /// Builds a verifier from reference outputs and ignore-pattern
    /// sources (see [`crate::textpat`] for the syntax).
    pub fn new(references: Vec<String>, ignore_patterns: &[String]) -> Self {
        Verifier {
            references,
            ignore: ignore_patterns.iter().map(|p| Pattern::parse(p)).collect(),
        }
    }

    /// Single exact reference, no ignores.
    pub fn exact(reference: String) -> Self {
        Verifier {
            references: vec![reference],
            ignore: Vec::new(),
        }
    }

    /// Adds another acceptable reference output.
    pub fn add_reference(&mut self, reference: String) {
        self.references.push(reference);
    }

    /// Checks `stdout` against the references.
    pub fn check(&self, stdout: &str) -> Result<(), Mismatch> {
        let mut best: Option<Mismatch> = None;
        let mut best_line = 0usize;
        for r in &self.references {
            match self.check_one(r, stdout) {
                Ok(()) => return Ok(()),
                Err(m) => {
                    let line = match &m {
                        Mismatch::OutputDiffers { line, .. } => *line,
                        _ => 0,
                    };
                    if best.is_none() || line > best_line {
                        best_line = line;
                        best = Some(m);
                    }
                }
            }
        }
        Err(best.unwrap_or(Mismatch::ExecutionFailed("no references".into())))
    }

    fn check_one(&self, reference: &str, stdout: &str) -> Result<(), Mismatch> {
        let want: Vec<&str> = reference.lines().collect();
        let got: Vec<&str> = stdout.lines().collect();
        let n = want.len().max(got.len());
        for i in 0..n {
            let w = want.get(i).copied().unwrap_or("<missing>");
            let g = got.get(i).copied().unwrap_or("<missing>");
            if w == g {
                continue;
            }
            // A volatile line: both sides must match the same pattern.
            let excused = self.ignore.iter().any(|p| p.matches(w) && p.matches(g));
            if !excused {
                return Err(Mismatch::OutputDiffers {
                    line: i + 1,
                    expected: w.to_owned(),
                    actual: g.to_owned(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_passes() {
        let v = Verifier::exact("a\nb\n".into());
        assert!(v.check("a\nb\n").is_ok());
        assert!(v.check("a\nc\n").is_err());
    }

    #[test]
    fn ignore_pattern_excuses_volatile_lines() {
        let v = Verifier::new(
            vec!["checksum=42\nRuntime: 100 cycles\n".into()],
            &["Runtime: <int> cycles".into()],
        );
        assert!(v.check("checksum=42\nRuntime: 97 cycles\n").is_ok());
        // Checksum changes are NOT excused.
        let e = v.check("checksum=41\nRuntime: 100 cycles\n").unwrap_err();
        match e {
            Mismatch::OutputDiffers { line, .. } => assert_eq!(line, 1),
            _ => panic!("{e}"),
        }
        // A volatile line must still have the right shape.
        assert!(v.check("checksum=42\nRuntime: fast cycles\n").is_err());
    }

    #[test]
    fn missing_or_extra_lines_fail() {
        let v = Verifier::exact("a\nb\n".into());
        assert!(v.check("a\n").is_err());
        assert!(v.check("a\nb\nc\n").is_err());
    }

    #[test]
    fn multiple_references_any_match() {
        let mut v = Verifier::exact("mesh=271\n".into());
        v.add_reference("mesh=272\n".into());
        assert!(v.check("mesh=271\n").is_ok());
        assert!(v.check("mesh=272\n").is_ok());
        assert!(v.check("mesh=273\n").is_err());
    }

    #[test]
    fn reports_deepest_divergence() {
        let mut v = Verifier::exact("a\nx\n".into());
        v.add_reference("a\nb\nc\n".into());
        let e = v.check("a\nb\nd\n").unwrap_err();
        match e {
            Mismatch::OutputDiffers { line, .. } => assert_eq!(line, 3),
            _ => panic!(),
        }
    }

    #[test]
    fn truncated_output_pinpoints_first_missing_line() {
        // A probe killed mid-run (trap, fuel, injected hang) leaves a
        // truncated stdout; the mismatch must point at the first line
        // the reference still expected.
        let v = Verifier::exact("header\nrow 1\nrow 2\nchecksum=9\n".into());
        let e = v.check("header\nrow 1\n").unwrap_err();
        assert_eq!(
            e,
            Mismatch::OutputDiffers {
                line: 3,
                expected: "row 2".into(),
                actual: "<missing>".into(),
            }
        );
    }

    #[test]
    fn extra_trailing_output_is_a_mismatch() {
        // Garbage appended after a correct transcript (e.g. a corrupted
        // write) is classified at the first extra line, with the
        // reference side reported missing.
        let v = Verifier::exact("a\nb\n".into());
        let e = v.check("a\nb\n\u{7f}garbled probe output\n").unwrap_err();
        assert_eq!(
            e,
            Mismatch::OutputDiffers {
                line: 3,
                expected: "<missing>".into(),
                actual: "\u{7f}garbled probe output".into(),
            }
        );
    }

    #[test]
    fn ignore_patterns_do_not_excuse_truncation_or_extras() {
        // An ignore pattern excuses value drift on a line both sides
        // *have* — it must not excuse a line that exists on only one
        // side, even if the present side matches the pattern.
        let v = Verifier::new(
            vec!["checksum=42\nRuntime: 100 cycles\n".into()],
            &["Runtime: <int> cycles".into()],
        );
        // Truncated: the volatile line is missing entirely.
        let e = v.check("checksum=42\n").unwrap_err();
        assert_eq!(
            e,
            Mismatch::OutputDiffers {
                line: 2,
                expected: "Runtime: 100 cycles".into(),
                actual: "<missing>".into(),
            }
        );
        // Extra: a second volatile-shaped line the reference never had.
        let extra = "checksum=42\nRuntime: 97 cycles\nRuntime: 3 cycles\n";
        let e = v.check(extra).unwrap_err();
        assert_eq!(
            e,
            Mismatch::OutputDiffers {
                line: 3,
                expected: "<missing>".into(),
                actual: "Runtime: 3 cycles".into(),
            }
        );
    }
}
