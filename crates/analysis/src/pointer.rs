//! Pointer decomposition: strip GEP chains down to an underlying object
//! plus constant/dynamic offsets. Shared by `BasicAA`, `GlobalsAA` and
//! the points-to analyses.

use oraql_ir::inst::{GepOffset, Inst, InstId};
use oraql_ir::module::{Function, GlobalId};
use oraql_ir::value::Value;

/// The underlying object a pointer was derived from, as far as a local
/// walk over GEPs can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtrBase {
    /// A stack allocation in this function.
    Alloca(InstId),
    /// The `n`-th function argument; `noalias` records its attribute.
    Arg {
        /// Argument index.
        index: u32,
        /// Whether the argument carries the `noalias` attribute.
        noalias: bool,
    },
    /// A module global.
    Global(GlobalId),
    /// A pointer loaded from memory (unknown provenance).
    LoadResult(InstId),
    /// A pointer returned by a call (unknown provenance).
    CallResult(InstId),
    /// A phi or select of pointers (not traced through).
    Merge(InstId),
    /// Anything else (int-to-ptr casts, constants, undef).
    Unknown,
}

impl PtrBase {
    /// True when the base is an "identified object" in LLVM terms: a
    /// distinct allocation whose address is not an alias of any other
    /// identified object (allocas, globals, and — against other
    /// identified objects — noalias arguments).
    pub fn is_identified(self) -> bool {
        matches!(self, PtrBase::Alloca(_) | PtrBase::Global(_))
    }
}

/// A pointer decomposed as `base + const_off + sum(index_i * scale_i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecomposedPtr {
    /// Underlying object.
    pub base: PtrBase,
    /// Constant byte offset accumulated over the GEP chain.
    pub const_off: i64,
    /// Dynamic `(index value, byte scale)` terms, in walk order.
    pub dynamic: Vec<(Value, i64)>,
}

impl DecomposedPtr {
    /// True when the offset is entirely constant.
    pub fn is_const_offset(&self) -> bool {
        self.dynamic.is_empty()
    }

    /// True when both decompositions have the same dynamic terms
    /// (syntactically, same value and scale, order-insensitively).
    pub fn same_dynamic_terms(&self, other: &DecomposedPtr) -> bool {
        if self.dynamic.len() != other.dynamic.len() {
            return false;
        }
        let mut other_terms = other.dynamic.clone();
        for term in &self.dynamic {
            match other_terms.iter().position(|t| t == term) {
                Some(i) => {
                    other_terms.swap_remove(i);
                }
                None => return false,
            }
        }
        true
    }
}

/// Decomposes `ptr` within `f`, walking through GEP instructions.
pub fn decompose(f: &Function, ptr: Value) -> DecomposedPtr {
    let mut const_off: i64 = 0;
    let mut dynamic: Vec<(Value, i64)> = Vec::new();
    let mut cur = ptr;
    // GEP chains are acyclic in SSA (an instruction cannot be its own
    // ancestor operand), so this walk terminates.
    loop {
        match cur {
            Value::Global(g) => {
                return DecomposedPtr {
                    base: PtrBase::Global(g),
                    const_off,
                    dynamic,
                }
            }
            Value::Arg(i) => {
                let noalias = f.params.get(i as usize).map(|p| p.noalias).unwrap_or(false);
                return DecomposedPtr {
                    base: PtrBase::Arg { index: i, noalias },
                    const_off,
                    dynamic,
                };
            }
            Value::Inst(id) => match f.inst(id) {
                Inst::Gep { base, offset } => {
                    match offset {
                        GepOffset::Const(c) => const_off += c,
                        GepOffset::Scaled { index, scale, add } => {
                            const_off += add;
                            match index.as_int() {
                                // Fold constant indices into the constant
                                // offset (common after loop unrolling).
                                Some(ci) => const_off += ci * scale,
                                None => dynamic.push((*index, *scale)),
                            }
                        }
                    }
                    cur = *base;
                }
                Inst::Alloca { .. } => {
                    return DecomposedPtr {
                        base: PtrBase::Alloca(id),
                        const_off,
                        dynamic,
                    }
                }
                Inst::Load { .. } => {
                    return DecomposedPtr {
                        base: PtrBase::LoadResult(id),
                        const_off,
                        dynamic,
                    }
                }
                Inst::Call { .. } => {
                    return DecomposedPtr {
                        base: PtrBase::CallResult(id),
                        const_off,
                        dynamic,
                    }
                }
                Inst::Phi { .. } | Inst::Select { .. } => {
                    return DecomposedPtr {
                        base: PtrBase::Merge(id),
                        const_off,
                        dynamic,
                    }
                }
                _ => {
                    return DecomposedPtr {
                        base: PtrBase::Unknown,
                        const_off,
                        dynamic,
                    }
                }
            },
            _ => {
                return DecomposedPtr {
                    base: PtrBase::Unknown,
                    const_off,
                    dynamic,
                }
            }
        }
    }
}

/// The underlying object of `ptr` (convenience wrapper).
pub fn underlying_object(f: &Function, ptr: Value) -> PtrBase {
    decompose(f, ptr).base
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Module, Ty};

    #[test]
    fn walks_gep_chain() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr, Ty::I64], None);
        let p = b.arg(0);
        let i = b.arg(1);
        let a = b.gep(p, 16);
        let c = b.gep_scaled(a, i, 8, 4);
        let d = b.gep(c, -8);
        b.store(Ty::I64, i, d);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let dec = decompose(f, Value::Inst(f.blocks[0].insts[2])); // d
        assert_eq!(
            dec.base,
            PtrBase::Arg {
                index: 0,
                noalias: false
            }
        );
        assert_eq!(dec.const_off, 16 + 4 - 8);
        assert_eq!(dec.dynamic, vec![(i, 8)]);
    }

    #[test]
    fn constant_index_folds() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        let p = b.arg(0);
        let g = b.gep_scaled(p, Value::ConstInt(3), 8, 0);
        b.store(Ty::I64, Value::ConstInt(0), g);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let dec = decompose(f, Value::Inst(f.blocks[0].insts[0]));
        assert!(dec.is_const_offset());
        assert_eq!(dec.const_off, 24);
    }

    #[test]
    fn alloca_and_noalias_bases() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        b.set_noalias(0, true);
        let a = b.alloca(64, "buf");
        let g = b.gep(a, 8);
        b.store(Ty::I64, Value::ConstInt(0), g);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let dec = decompose(f, Value::Inst(f.blocks[0].insts[1]));
        assert!(matches!(dec.base, PtrBase::Alloca(_)));
        assert!(dec.base.is_identified());
        let argdec = decompose(f, Value::Arg(0));
        assert_eq!(
            argdec.base,
            PtrBase::Arg {
                index: 0,
                noalias: true
            }
        );
        assert!(!argdec.base.is_identified());
    }

    #[test]
    fn same_dynamic_terms_is_order_insensitive() {
        let a = DecomposedPtr {
            base: PtrBase::Unknown,
            const_off: 0,
            dynamic: vec![(Value::Arg(0), 8), (Value::Arg(1), 4)],
        };
        let b = DecomposedPtr {
            base: PtrBase::Unknown,
            const_off: 4,
            dynamic: vec![(Value::Arg(1), 4), (Value::Arg(0), 8)],
        };
        assert!(a.same_dynamic_terms(&b));
        let c = DecomposedPtr {
            base: PtrBase::Unknown,
            const_off: 0,
            dynamic: vec![(Value::Arg(0), 4)],
        };
        assert!(!a.same_dynamic_terms(&c));
    }
}
