//! Deterministic pseudo-random generation for the property-style tests.
//!
//! The hermetic build has no `proptest`/`rand`, so the randomized tests
//! drive themselves from this splitmix64-based generator: fixed seeds,
//! fixed case counts, fully reproducible failures (the failing seed is
//! part of the assertion message at the call site).
//!
//! Shared by several integration-test binaries; not every binary uses
//! every helper.
#![allow(dead_code)]

/// Splitmix64: tiny, statistically fine for test-case generation, and
/// endian/platform independent.
pub struct Gen {
    state: u64,
}

impl Gen {
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`; `hi > lo` required.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    pub fn bools(&mut self, len_lo: usize, len_hi: usize) -> Vec<bool> {
        let n = self.range_usize(len_lo, len_hi);
        (0..n).map(|_| self.bool()).collect()
    }

    /// A string of `len` chars drawn from `alphabet`.
    pub fn string(&mut self, alphabet: &str, len_lo: usize, len_hi: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let n = self.range_usize(len_lo, len_hi);
        (0..n)
            .map(|_| chars[self.range_usize(0, chars.len())])
            .collect()
    }
}
