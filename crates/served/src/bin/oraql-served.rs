//! The `oraql-served` daemon and its operator CLI.
//!
//! ```text
//! oraql-served serve --dir DIR [--listen ADDR] [--shards N]
//!                    [--acceptors N] [--fsync-ms N]
//!                    [--write-timeout-ms N] [--idle-poll-ms N]
//!                    [--max-inflight N] [--max-conns N]
//!                    [--request-deadline-ms N] [--fault-plan SPEC]
//! oraql-served ping|stats|metrics|sync|compact ADDR
//! ```
//!
//! `serve` runs until killed; the journals are crash-safe, so SIGKILL
//! at any point loses at most one fsync interval of acked writes and
//! never corrupts recovery (see `docs/OPERATIONS.md`). `--fault-plan`
//! arms the wire/daemon chaos sites (`FaultPlan::parse` syntax) with
//! `CrashMode::Abort` — an injected `crash-point` genuinely kills the
//! process, which is exactly what the crash-torture harness wants from
//! a child daemon. The other subcommands are thin client wrappers for
//! operators and scripts.

use oraql_served::{Client, CrashMode, Server, ServerOptions};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage:
  oraql-served serve --dir DIR [--listen ADDR] [--shards N] [--acceptors N] [--fsync-ms N]
                     [--write-timeout-ms N] [--idle-poll-ms N] [--max-inflight N]
                     [--max-conns N] [--request-deadline-ms N] [--fault-plan SPEC]
  oraql-served ping ADDR
  oraql-served stats ADDR
  oraql-served metrics ADDR
  oraql-served sync ADDR
  oraql-served compact ADDR

ADDR is host:port for TCP or unix:<path> (or any string containing '/')
for a Unix-domain socket. Default listen address: 127.0.0.1:7437.
Defaults: 4 shards, 2 acceptors, 5 ms fsync, 10000 ms write timeout,
100 ms idle poll, 100 ms request deadline, unbounded inflight/conns.
--fault-plan injects wire/daemon chaos (testing only); crash points
abort the process.";

fn fail(msg: &str) -> ExitCode {
    eprintln!("oraql-served: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "serve" => serve(&args[1..]),
        "ping" | "stats" | "metrics" | "sync" | "compact" => {
            let Some(addr) = args.get(1) else {
                return fail("missing ADDR (see --help)");
            };
            client_op(cmd, addr)
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown command `{other}` (see --help)")),
    }
}

fn serve(args: &[String]) -> ExitCode {
    let mut dir = None;
    let mut listen = "127.0.0.1:7437".to_string();
    let mut config = ServerOptions::new("");
    let mut fault_plan = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        fn num<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String> {
            v.parse::<T>().map_err(|_| format!("bad {flag} `{v}`"))
        }
        let parsed = match a.as_str() {
            "--dir" => val("--dir").map(|v| dir = Some(v)),
            "--listen" => val("--listen").map(|v| listen = v),
            "--shards" => val("--shards")
                .and_then(|v| num("--shards", v))
                .map(|n| config.shards = n),
            "--acceptors" => val("--acceptors")
                .and_then(|v| num("--acceptors", v))
                .map(|n| config.acceptors = n),
            "--fsync-ms" => val("--fsync-ms")
                .and_then(|v| num("--fsync-ms", v))
                .map(|n| config.fsync_interval = Duration::from_millis(n)),
            "--write-timeout-ms" => val("--write-timeout-ms")
                .and_then(|v| num("--write-timeout-ms", v))
                .map(|n| config.write_timeout = Duration::from_millis(n)),
            "--idle-poll-ms" => val("--idle-poll-ms")
                .and_then(|v| num("--idle-poll-ms", v))
                .map(|n: u64| config.idle_poll = Duration::from_millis(n.max(1))),
            "--max-inflight" => val("--max-inflight")
                .and_then(|v| num("--max-inflight", v))
                .map(|n| config.max_inflight = n),
            "--max-conns" => val("--max-conns")
                .and_then(|v| num("--max-conns", v))
                .map(|n| config.max_conns = n),
            "--request-deadline-ms" => val("--request-deadline-ms")
                .and_then(|v| num("--request-deadline-ms", v))
                .map(|n| config.request_deadline = Duration::from_millis(n)),
            "--fault-plan" => val("--fault-plan")
                .and_then(|v| oraql_faults::FaultPlan::parse(&v).map(|p| fault_plan = Some(p))),
            other => Err(format!("unknown flag `{other}` (see --help)")),
        };
        if let Err(msg) = parsed {
            return fail(&msg);
        }
    }
    let Some(dir) = dir else {
        return fail("serve requires --dir DIR");
    };
    config.dir = dir.into();
    if let Some(plan) = fault_plan {
        config.faults = Some(Arc::new(oraql_faults::FaultInjector::new(plan)));
        config.crash_mode = CrashMode::Abort;
    }
    let server = match Server::start(&config, &listen) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot start: {e}")),
    };
    println!(
        "oraql-served: listening on {}, {} shards in {}, {} records indexed",
        server.addr(),
        config.shards.max(1),
        config.dir.display(),
        server.indexed_records()
    );
    // Run until killed. The journals tolerate SIGKILL at any point;
    // a clean `kill` (SIGTERM) also just drops the process — recovery
    // on next start truncates at most one torn tail per shard.
    loop {
        std::thread::park();
    }
}

fn client_op(cmd: &str, addr: &str) -> ExitCode {
    let client = Client::new(addr);
    let res = match cmd {
        "ping" => client.ping().map(|()| "pong".to_string()),
        "stats" => client.server_stats(),
        "metrics" => client.server_metrics(),
        "sync" => client.sync().map(|()| "synced".to_string()),
        "compact" => client.server_compact(),
        _ => unreachable!("dispatched in main"),
    };
    match res {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}
