//! Shared machinery for building the proxy-application modules.
//!
//! The recurring structure across all seven proxy apps:
//!
//! * a *context struct* (a global) holding data pointers — the
//!   array-abstraction / `this`-pointer indirection that defeats the
//!   conservative analyses (every kernel re-loads its `dptr`s, so all
//!   kernel pointers are loads of unknown provenance),
//! * *kernels* operating through those pointers,
//! * planted **hazard pairs**: two context slots that point at the same
//!   memory, with a load/store/load sandwich whose forwarding under a
//!   wrong no-alias answer changes the printed checksum (the red squares
//!   of the paper's Fig. 2),
//! * a checksum + figure-of-merit epilogue and a `Runtime:` line read
//!   from the VM's cycle counter, which legitimately differs between
//!   compilations and must be covered by a verifier ignore pattern.

use oraql_ir::builder::FunctionBuilder;
use oraql_ir::module::{FunctionId, GlobalId, Module};
use oraql_ir::value::Value;
use oraql_ir::{TbaaTag, Ty};

/// Ignore pattern every workload config uses for its volatile lines.
pub fn standard_ignore_patterns() -> Vec<String> {
    vec![
        "Runtime: <int> cycles".into(),
        "grind time <float> ms".into(),
        "FOM: <float> <any>".into(),
    ]
}

/// What a context slot points at.
#[derive(Debug, Clone)]
pub enum SlotTarget {
    /// A dedicated array global.
    Array {
        /// The array.
        global: GlobalId,
    },
    /// An alias view into another slot's array at a byte offset — a
    /// planted hazard (or a benign overlapping view).
    AliasOf {
        /// Index of the slot whose array is aliased.
        slot: usize,
        /// Byte offset into that array.
        offset: i64,
    },
    /// A pointer into the context object itself (the `this`-pointer
    /// hazard of the TestSNAP OpenMP configuration: a data pointer that
    /// targets a field of the very struct it is stored in).
    CtxField {
        /// Byte offset within the field area that follows the slots.
        offset: i64,
    },
}

/// A context struct: a global of pointer slots, initialised by `main`.
pub struct Ctx {
    /// The context global (one 8-byte pointer per slot).
    pub global: GlobalId,
    /// Slot names, in slot order.
    pub names: Vec<String>,
    /// Slot targets.
    pub targets: Vec<SlotTarget>,
    /// TBAA tag for data (f64) accesses.
    pub tag_data: TbaaTag,
    /// TBAA tag for pointer loads from the context.
    pub tag_ptr: TbaaTag,
}

impl Ctx {
    /// Slot index by name.
    pub fn slot(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("unknown ctx slot {name}"))
    }

    /// The array global backing slot `name` (resolving alias views).
    pub fn backing(&self, name: &str) -> GlobalId {
        let mut i = self.slot(name);
        loop {
            match &self.targets[i] {
                SlotTarget::Array { global } => return *global,
                SlotTarget::AliasOf { slot, .. } => i = *slot,
                SlotTarget::CtxField { .. } => return self.global,
            }
        }
    }

    /// Byte offset of the scalar field area within the context global.
    pub fn fields_base(&self) -> i64 {
        8 * self.names.len() as i64
    }
}

/// Builds a context struct. `arrays` are `(name, bytes)`; `aliases` are
/// `(name, target array name, byte offset)` planted views. For slots
/// pointing into the context object itself and trailing scalar fields,
/// use [`make_ctx_with_fields`].
pub fn make_ctx(
    m: &mut Module,
    prefix: &str,
    arrays: &[(&str, u64)],
    aliases: &[(&str, &str, i64)],
) -> Ctx {
    make_ctx_with_fields(m, prefix, arrays, aliases, &[], 0)
}

/// Like [`make_ctx`], plus `ctx_fields` slots that point at byte offsets
/// within a trailing `field_bytes`-sized scalar area of the context
/// global itself.
pub fn make_ctx_with_fields(
    m: &mut Module,
    prefix: &str,
    arrays: &[(&str, u64)],
    aliases: &[(&str, &str, i64)],
    ctx_fields: &[(&str, i64)],
    field_bytes: u64,
) -> Ctx {
    let tag_root = TbaaTag::ROOT;
    let tag_data = m.tbaa.add(&format!("{prefix} double"), tag_root);
    let tag_ptr = m.tbaa.add(&format!("{prefix} any pointer"), tag_root);
    let mut names = Vec::new();
    let mut targets = Vec::new();
    for (name, bytes) in arrays {
        let g = m.add_global(&format!("{prefix}.{name}"), *bytes, vec![], false);
        names.push((*name).to_owned());
        targets.push(SlotTarget::Array { global: g });
    }
    for (name, of, off) in aliases {
        let idx = names
            .iter()
            .position(|n| n == of)
            .unwrap_or_else(|| panic!("alias target {of} missing"));
        names.push((*name).to_owned());
        targets.push(SlotTarget::AliasOf {
            slot: idx,
            offset: *off,
        });
    }
    for (name, off) in ctx_fields {
        names.push((*name).to_owned());
        targets.push(SlotTarget::CtxField { offset: *off });
    }
    let global = m.add_global(
        &format!("{prefix}.ctx"),
        8 * names.len() as u64 + field_bytes,
        vec![],
        false,
    );
    Ctx {
        global,
        names,
        targets,
        tag_data,
        tag_ptr,
    }
}

/// Emits the `main`-side initialization: stores each slot's pointer into
/// the context global.
pub fn init_ctx(b: &mut FunctionBuilder<'_>, ctx: &Ctx) {
    for (i, t) in ctx.targets.iter().enumerate() {
        let ptr = match t {
            SlotTarget::Array { global } => Value::Global(*global),
            SlotTarget::CtxField { offset } => {
                b.gep(Value::Global(ctx.global), ctx.fields_base() + offset)
            }
            SlotTarget::AliasOf { slot, offset } => {
                // Resolve to the backing array.
                let mut s = *slot;
                let mut off = *offset;
                loop {
                    match &ctx.targets[s] {
                        SlotTarget::Array { global } => {
                            break if off == 0 {
                                Value::Global(*global)
                            } else {
                                b.gep(Value::Global(*global), off)
                            }
                        }
                        SlotTarget::AliasOf { slot, offset } => {
                            off += offset;
                            s = *slot;
                        }
                        SlotTarget::CtxField { offset } => {
                            break b
                                .gep(Value::Global(ctx.global), ctx.fields_base() + offset + off)
                        }
                    }
                }
            }
        };
        let slot_addr = b.gep(Value::Global(ctx.global), 8 * i as i64);
        let tag = ctx.tag_ptr;
        b.store_tbaa(Ty::Ptr, ptr, slot_addr, tag);
    }
}

/// Loads the data pointer of slot `name` inside a kernel, given the
/// kernel's context parameter. This is the `dptr` indirection: the
/// result is a load of unknown provenance.
pub fn dptr(b: &mut FunctionBuilder<'_>, ctx: &Ctx, ctx_param: Value, name: &str) -> Value {
    let off = 8 * ctx.slot(name) as i64;
    let addr = if off == 0 {
        ctx_param
    } else {
        b.gep(ctx_param, off)
    };
    b.load_tbaa(Ty::Ptr, addr, ctx.tag_ptr)
}

/// Emits one hazard sandwich at `elem` (an f64 index): a load through
/// `read_view`, a store through `write_view` (which aliases it at run
/// time), and a second load through `read_view` whose value feeds the
/// accumulator. A wrong no-alias answer lets GVN forward the first load
/// into the second and changes the checksum.
pub fn hazard_sandwich(
    b: &mut FunctionBuilder<'_>,
    ctx: &Ctx,
    ctx_param: Value,
    read_view: &str,
    write_view: &str,
    elem: i64,
    acc_slot: Value,
) {
    let tag = ctx.tag_data;
    let p = dptr(b, ctx, ctx_param, read_view);
    let q = dptr(b, ctx, ctx_param, write_view);
    let pa = b.gep(p, 8 * elem);
    let qa = b.gep(q, 8 * elem);
    let x1 = b.load_tbaa(Ty::F64, pa, tag);
    let bumped = b.fadd(x1, Value::const_f64(1.0));
    b.store_tbaa(Ty::F64, bumped, qa, tag);
    let x2 = b.load_tbaa(Ty::F64, pa, tag); // must observe the store
    let s = b.fadd(x1, x2);
    let cur = b.load_tbaa(Ty::F64, acc_slot, tag);
    let ns = b.fadd(cur, s);
    b.store_tbaa(Ty::F64, ns, acc_slot, tag);
}

/// How a kernel materializes its data pointers.
///
/// Well-tuned C++ loads the `dptr`s into locals once before the loop
/// (the compiler has nothing left to hoist); abstraction-heavy or
/// compiler-generated code (Fortran descriptors, C macro packages,
/// Kokkos views) re-loads them every iteration — which is exactly where
/// the paper's LICM statistics explode under optimism (TestSNAP-Fortran:
/// +1272% hoisted loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrMode {
    /// Data pointers loaded once, before the loop.
    Hoisted,
    /// Data pointers re-loaded in every iteration.
    PerIteration,
}

/// Emits `out[i] = a[i] * scale + b[i]` over `[start, end)` through dptr
/// indirection — the bread-and-butter kernel loop (vectorizable under
/// optimism when `math` is off, GVN/LICM material when per-iteration).
/// With `math` on, each element additionally pays a `sqrt(fabs(...))`
/// — the FP-heavy shape of real kernels, which also (realistically)
/// blocks the loop vectorizer.
#[allow(clippy::too_many_arguments)]
pub fn axpy_loop_ex(
    b: &mut FunctionBuilder<'_>,
    ctx: &Ctx,
    ctx_param: Value,
    a_name: &str,
    b_name: &str,
    out_name: &str,
    scale: f64,
    start: Value,
    end: Value,
    mode: PtrMode,
    math: bool,
) {
    let tag = ctx.tag_data;
    let pre = if mode == PtrMode::Hoisted {
        Some((
            dptr(b, ctx, ctx_param, a_name),
            dptr(b, ctx, ctx_param, b_name),
            dptr(b, ctx, ctx_param, out_name),
        ))
    } else {
        None
    };
    b.counted_loop(start, end, |b, i| {
        let (ap, bp, op) = match pre {
            Some(t) => t,
            None => (
                dptr(b, ctx, ctx_param, a_name),
                dptr(b, ctx, ctx_param, b_name),
                dptr(b, ctx, ctx_param, out_name),
            ),
        };
        let ai = b.gep_scaled(ap, i, 8, 0);
        let av = b.load_tbaa(Ty::F64, ai, tag);
        let sc = b.fmul(av, Value::const_f64(scale));
        let sc = if math {
            let a = b.call_external("fabs", vec![sc], Some(Ty::F64)).unwrap();
            b.call_external("sqrt", vec![a], Some(Ty::F64)).unwrap()
        } else {
            sc
        };
        let bi = b.gep_scaled(bp, i, 8, 0);
        let bv = b.load_tbaa(Ty::F64, bi, tag);
        let s = b.fadd(sc, bv);
        let oi = b.gep_scaled(op, i, 8, 0);
        b.store_tbaa(Ty::F64, s, oi, tag);
    });
}

/// A two-phase update: `out[i] = sqrt(|a[i]*scale|) + b[i]` followed by
/// `out[i] += a[i] * 0.5` with `a[i]` *re-loaded* after the intervening
/// store. The reload (and the read-back of `out[i]`) are pinned by the
/// may-aliasing store conservatively and merged/forwarded by GVN only
/// under optimism — the per-iteration instruction reduction the paper
/// reports for the OpenMP TestSNAP build.
#[allow(clippy::too_many_arguments)]
pub fn axpy_reload_loop(
    b: &mut FunctionBuilder<'_>,
    ctx: &Ctx,
    ctx_param: Value,
    a_name: &str,
    b_name: &str,
    out_name: &str,
    scale: f64,
    start: Value,
    end: Value,
) {
    let tag = ctx.tag_data;
    let ap = dptr(b, ctx, ctx_param, a_name);
    let bp = dptr(b, ctx, ctx_param, b_name);
    let op = dptr(b, ctx, ctx_param, out_name);
    b.counted_loop(start, end, |b, i| {
        let ai = b.gep_scaled(ap, i, 8, 0);
        let av = b.load_tbaa(Ty::F64, ai, tag);
        let sc0 = b.fmul(av, Value::const_f64(scale));
        let sca = b.call_external("fabs", vec![sc0], Some(Ty::F64)).unwrap();
        let sc = b.call_external("sqrt", vec![sca], Some(Ty::F64)).unwrap();
        let bi = b.gep_scaled(bp, i, 8, 0);
        let bv = b.load_tbaa(Ty::F64, bi, tag);
        let s = b.fadd(sc, bv);
        let oi = b.gep_scaled(op, i, 8, 0);
        b.store_tbaa(Ty::F64, s, oi, tag);
        // Second phase: a[i] re-loaded past the store; out[i] read back.
        let ai2 = b.gep_scaled(ap, i, 8, 0);
        let av2 = b.load_tbaa(Ty::F64, ai2, tag);
        let half = b.fmul(av2, Value::const_f64(0.5));
        let oi2 = b.gep_scaled(op, i, 8, 0);
        let cur = b.load_tbaa(Ty::F64, oi2, tag);
        let s2 = b.fadd(cur, half);
        b.store_tbaa(Ty::F64, s2, oi2, tag);
    });
}

/// [`axpy_loop_ex`] with hoisted pointers and per-element math — the
/// tuned-kernel shape, as a plain `fn` so call sites can select between
/// this and [`axpy_reload_loop`] uniformly.
#[allow(clippy::too_many_arguments)]
pub fn axpy_math_loop(
    b: &mut FunctionBuilder<'_>,
    ctx: &Ctx,
    ctx_param: Value,
    a_name: &str,
    b_name: &str,
    out_name: &str,
    scale: f64,
    start: Value,
    end: Value,
) {
    axpy_loop_ex(
        b,
        ctx,
        ctx_param,
        a_name,
        b_name,
        out_name,
        scale,
        start,
        end,
        PtrMode::Hoisted,
        true,
    );
}

/// [`axpy_loop_ex`] with per-iteration pointers and no math (the
/// original behaviour; used where those effects are the point).
#[allow(clippy::too_many_arguments)]
pub fn axpy_loop(
    b: &mut FunctionBuilder<'_>,
    ctx: &Ctx,
    ctx_param: Value,
    a_name: &str,
    b_name: &str,
    out_name: &str,
    scale: f64,
    start: Value,
    end: Value,
) {
    axpy_loop_ex(
        b,
        ctx,
        ctx_param,
        a_name,
        b_name,
        out_name,
        scale,
        start,
        end,
        PtrMode::PerIteration,
        false,
    );
}

/// Fills an array slot with `f(i) = base + i * step` over `n` elements
/// (direct global access — resolvable by BasicAA, cheap to compile).
pub fn fill_array(
    b: &mut FunctionBuilder<'_>,
    ctx: &Ctx,
    name: &str,
    n: i64,
    base: f64,
    step: f64,
) {
    let g = ctx.backing(name);
    let tag = ctx.tag_data;
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(n), |b, i| {
        let fi = b.si_to_fp(i);
        let scaled = b.fmul(fi, Value::const_f64(step));
        let v = b.fadd(scaled, Value::const_f64(base));
        let addr = b.gep_scaled(Value::Global(g), i, 8, 0);
        b.store_tbaa(Ty::F64, v, addr, tag);
    });
}

/// Emits the checksum epilogue: sums `n` f64 elements of slot `name`
/// (direct access) into a fresh accumulator and prints
/// `checksum(<label>)=<value>`.
pub fn checksum(b: &mut FunctionBuilder<'_>, ctx: &Ctx, name: &str, n: i64, label: &str) {
    let g = ctx.backing(name);
    let tag = ctx.tag_data;
    let acc = b.alloca(8, &format!("acc.{label}"));
    b.store_tbaa(Ty::F64, Value::const_f64(0.0), acc, tag);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(n), |b, i| {
        let addr = b.gep_scaled(Value::Global(g), i, 8, 0);
        let v = b.load_tbaa(Ty::F64, addr, tag);
        let cur = b.load_tbaa(Ty::F64, acc, tag);
        let s = b.fadd(cur, v);
        b.store_tbaa(Ty::F64, s, acc, tag);
    });
    let fin = b.load_tbaa(Ty::F64, acc, tag);
    b.print(&format!("checksum({label})={{}}"), vec![fin]);
}

/// Prints the volatile timing epilogue (`Runtime: <cycles> cycles` plus
/// a figure-of-merit line derived from it).
pub fn timing_epilogue(b: &mut FunctionBuilder<'_>, fom_label: &str) {
    let t = b.call_external("clock", vec![], Some(Ty::I64)).unwrap();
    b.print("Runtime: {} cycles", vec![t]);
    let tf = b.si_to_fp(t);
    let ms = b.fdiv(tf, Value::const_f64(1_000_000.0));
    b.print(&format!("FOM: {{}} {fom_label}"), vec![ms]);
}

/// Declares an outlined OpenMP-style worker `(tid, ctx)` and returns a
/// builder positioned inside it. Call `finish()` on the returned builder
/// when done.
pub fn outlined_worker<'m>(m: &'m mut Module, name: &str, src_file: &str) -> FunctionBuilder<'m> {
    let mut b = FunctionBuilder::new(m, name, vec![Ty::I64, Ty::Ptr], None);
    b.set_outlined(true);
    b.set_src_file(src_file);
    b
}

/// Declares a device kernel `(gid, ctx)`.
pub fn device_kernel<'m>(m: &'m mut Module, name: &str, src_file: &str) -> FunctionBuilder<'m> {
    let mut b = FunctionBuilder::new(m, name, vec![Ty::I64, Ty::Ptr], None);
    b.set_target(oraql_ir::Target::Device);
    b.set_outlined(true);
    b.set_src_file(src_file);
    b
}

/// Chunk bounds for thread `tid` of `threads` over `n` items:
/// `(tid*n/threads, (tid+1)*n/threads)` as emitted IR.
pub fn chunk_bounds(
    b: &mut FunctionBuilder<'_>,
    tid: Value,
    n: i64,
    threads: i64,
) -> (Value, Value) {
    let per = n / threads;
    let lo = b.mul(tid, Value::ConstInt(per));
    let t1 = b.add(tid, Value::ConstInt(1));
    let hi = b.mul(t1, Value::ConstInt(per));
    (lo, hi)
}

/// Builds a `FunctionId` for `main` with the standard prologue pattern:
/// callers get a builder with `src_file` set.
pub fn main_builder<'m>(m: &'m mut Module, src_file: &str) -> FunctionBuilder<'m> {
    let mut b = FunctionBuilder::new(m, "main", vec![], None);
    b.set_src_file(src_file);
    b
}

/// Declares an empty `void escape(ptr)` helper: calling it makes an
/// alloca's address escape (blinding the conservative chain) while the
/// callee's memory summary (`memory(none)`) keeps DSE able to reason
/// about reads. Mirrors registering a buffer with an external-looking
/// bookkeeping API.
pub fn escape_helper(m: &mut Module) -> FunctionId {
    if let Some(f) = m.find_func("escape") {
        return f;
    }
    let mut b = FunctionBuilder::new(m, "escape", vec![Ty::Ptr], None);
    b.set_src_file("Utils");
    b.ret(None);
    b.finish()
}

/// Quick helper: call an internal function with a ctx pointer argument.
pub fn call_kernel(b: &mut FunctionBuilder<'_>, f: FunctionId, ctx: &Ctx) {
    b.call(f, vec![Value::Global(ctx.global)], None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_vm::Interpreter;

    #[test]
    fn ctx_machinery_roundtrip() {
        let mut m = Module::new("t");
        let ctx = make_ctx(
            &mut m,
            "app",
            &[("a", 80), ("out", 80)],
            &[("a_view", "a", 8)],
        );
        assert_eq!(ctx.slot("out"), 1);
        assert_eq!(ctx.backing("a_view"), ctx.backing("a"));

        // Kernel: out[i] = a[i] * 2 + out[i]*0 via dptrs.
        let kern = {
            let mut b = FunctionBuilder::new(&mut m, "kern", vec![Ty::Ptr], None);
            b.set_src_file("kern.c");
            let cp = b.arg(0);
            axpy_loop(
                &mut b,
                &ctx,
                cp,
                "a",
                "out",
                "out",
                2.0,
                Value::ConstInt(0),
                Value::ConstInt(10),
            );
            b.ret(None);
            b.finish()
        };
        let mut b = main_builder(&mut m, "main.c");
        init_ctx(&mut b, &ctx);
        fill_array(&mut b, &ctx, "a", 10, 1.0, 1.0);
        fill_array(&mut b, &ctx, "out", 10, 0.5, 0.0);
        call_kernel(&mut b, kern, &ctx);
        checksum(&mut b, &ctx, "out", 10, "out");
        timing_epilogue(&mut b, "points/s");
        b.ret(None);
        b.finish();
        oraql_ir::verify::assert_valid(&m);
        let out = Interpreter::run_main(&m).unwrap();
        // sum over i of (1 + i*1)*2 + 0.5 = 2*sum(1..=10)... check value:
        // a[i] = 1 + i, out[i] = 2(1+i) + 0.5; sum_i=0..9 = 2*(10+45)+5
        assert!(out.stdout.contains("checksum(out)=115.0"), "{}", out.stdout);
        assert!(out.stdout.contains("Runtime: "), "{}", out.stdout);
    }

    #[test]
    fn hazard_sandwich_changes_output_when_forwarded() {
        // Run the hazard program, then simulate the wrong forwarding by
        // hand and check the checksum actually differs (the signal the
        // driver relies on).
        let mut m = Module::new("t");
        let ctx = make_ctx(&mut m, "app", &[("a", 80)], &[("w", "a", 0)]);
        let kern = {
            let mut b = FunctionBuilder::new(&mut m, "kern", vec![Ty::Ptr], None);
            b.set_src_file("kern.c");
            let cp = b.arg(0);
            let acc = b.alloca(8, "acc");
            b.store(Ty::F64, Value::const_f64(0.0), acc);
            hazard_sandwich(&mut b, &ctx, cp, "a", "w", 3, acc);
            let v = b.load(Ty::F64, acc);
            b.print("acc={}", vec![v]);
            b.ret(None);
            b.finish()
        };
        let mut b = main_builder(&mut m, "main.c");
        init_ctx(&mut b, &ctx);
        fill_array(&mut b, &ctx, "a", 10, 1.0, 1.0);
        call_kernel(&mut b, kern, &ctx);
        b.ret(None);
        b.finish();
        let out = Interpreter::run_main(&m).unwrap();
        // a[3] = 4; x1 = 4, store 5, x2 = 5 -> acc = 9.
        assert!(out.stdout.contains("acc=9.0"), "{}", out.stdout);
    }
}
