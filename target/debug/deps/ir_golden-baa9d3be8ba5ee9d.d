/root/repo/target/debug/deps/ir_golden-baa9d3be8ba5ee9d.d: tests/ir_golden.rs

/root/repo/target/debug/deps/ir_golden-baa9d3be8ba5ee9d: tests/ir_golden.rs

tests/ir_golden.rs:
