/root/repo/target/debug/deps/parallel_speedup-c382da9741a26283.d: tests/parallel_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_speedup-c382da9741a26283.rmeta: tests/parallel_speedup.rs Cargo.toml

tests/parallel_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
