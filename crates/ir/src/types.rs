//! Access types. Pointers are opaque (as in modern LLVM); the type of a
//! memory access lives on the load/store instruction, not on the pointer.

/// The type of an SSA value or memory access.
///
/// Vector types carry their lane count; they are produced by the loop and
/// SLP vectorizers and consumed element-wise by the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 1-bit boolean (stored as one byte in memory).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// Opaque pointer (8 bytes).
    Ptr,
    /// Vector of `n` 64-bit integers.
    VecI64(u8),
    /// Vector of `n` 64-bit floats.
    VecF64(u8),
}

impl Ty {
    /// Size of the type in bytes when stored in memory.
    pub fn size(self) -> u64 {
        match self {
            Ty::I1 | Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 | Ty::F32 => 4,
            Ty::I64 | Ty::F64 | Ty::Ptr => 8,
            Ty::VecI64(n) | Ty::VecF64(n) => 8 * n as u64,
        }
    }

    /// True for the integer types (including `I1` and integer vectors).
    pub fn is_int(self) -> bool {
        matches!(
            self,
            Ty::I1 | Ty::I8 | Ty::I16 | Ty::I32 | Ty::I64 | Ty::VecI64(_)
        )
    }

    /// True for floating point types (including float vectors).
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64 | Ty::VecF64(_))
    }

    /// True for vector types.
    pub fn is_vector(self) -> bool {
        matches!(self, Ty::VecI64(_) | Ty::VecF64(_))
    }

    /// Lane count: 1 for scalars, `n` for vectors.
    pub fn lanes(self) -> u8 {
        match self {
            Ty::VecI64(n) | Ty::VecF64(n) => n,
            _ => 1,
        }
    }

    /// The scalar element type (identity for scalars).
    pub fn scalar(self) -> Ty {
        match self {
            Ty::VecI64(_) => Ty::I64,
            Ty::VecF64(_) => Ty::F64,
            t => t,
        }
    }

    /// The vector type with this scalar element and `n` lanes.
    ///
    /// Only `I64` and `F64` have vector forms; other element types panic,
    /// which the vectorizers guard against via [`Ty::vectorizable`].
    pub fn vec_of(self, n: u8) -> Ty {
        match self {
            Ty::I64 => Ty::VecI64(n),
            Ty::F64 => Ty::VecF64(n),
            t => panic!("no vector form for {t:?}"),
        }
    }

    /// Whether a vector form of this scalar type exists.
    pub fn vectorizable(self) -> bool {
        matches!(self, Ty::I64 | Ty::F64)
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::I1 => write!(f, "i1"),
            Ty::I8 => write!(f, "i8"),
            Ty::I16 => write!(f, "i16"),
            Ty::I32 => write!(f, "i32"),
            Ty::I64 => write!(f, "i64"),
            Ty::F32 => write!(f, "f32"),
            Ty::F64 => write!(f, "f64"),
            Ty::Ptr => write!(f, "ptr"),
            Ty::VecI64(n) => write!(f, "<{n} x i64>"),
            Ty::VecF64(n) => write!(f, "<{n} x f64>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Ty::I1.size(), 1);
        assert_eq!(Ty::I32.size(), 4);
        assert_eq!(Ty::Ptr.size(), 8);
        assert_eq!(Ty::VecF64(4).size(), 32);
    }

    #[test]
    fn vector_roundtrip() {
        assert_eq!(Ty::F64.vec_of(4), Ty::VecF64(4));
        assert_eq!(Ty::VecF64(4).scalar(), Ty::F64);
        assert_eq!(Ty::VecF64(4).lanes(), 4);
        assert!(Ty::F64.vectorizable());
        assert!(!Ty::I8.vectorizable());
    }

    #[test]
    fn classification() {
        assert!(Ty::I64.is_int());
        assert!(Ty::VecI64(2).is_int());
        assert!(Ty::F32.is_float());
        assert!(!Ty::Ptr.is_int());
        assert!(Ty::VecF64(2).is_vector());
        assert!(!Ty::F64.is_vector());
    }

    #[test]
    fn display() {
        assert_eq!(Ty::VecF64(4).to_string(), "<4 x f64>");
        assert_eq!(Ty::Ptr.to_string(), "ptr");
    }
}
