/root/repo/target/debug/examples/ips_probe-f1bc3142ea737f39.d: crates/bench/examples/ips_probe.rs Cargo.toml

/root/repo/target/debug/examples/libips_probe-f1bc3142ea737f39.rmeta: crates/bench/examples/ips_probe.rs Cargo.toml

crates/bench/examples/ips_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
