//! The ORAQL probing driver (paper §IV-B), parallel edition.
//!
//! Workflow: compile and run with the ORAQL pass deactivated and verify
//! the reference behaviour; try answering *every* query optimistically
//! (the empty sequence); if that breaks verification, bisect with the
//! configured strategy to pin down the queries that must stay
//! pessimistic.
//!
//! # Probe execution and caching
//!
//! Every probe goes through one shared `ProbeEngine` per driver,
//! which answers it from (in order):
//!
//! 1. the **decisions-digest cache** — identical decision vectors skip
//!    even the recompile (parallel mode only, keyed by the case name
//!    plus [`Decisions::render`]);
//! 2. the **persistent verdict store** ([`oraql_store::Store`], when
//!    [`DriverOptions::store`] is set) — a write-through tier behind
//!    the in-memory caches: verdicts another *process* computed are
//!    reused, first by decisions digest (skipping the compile), then by
//!    executable hash (skipping the run);
//! 3. the **executable-hash cache** — bit-identical recompilations
//!    reuse the previous test verdict (the seed driver's cache, now a
//!    `Mutex<HashMap>` shared across all probing threads of a suite);
//! 4. the **verdict server** ([`oraql_served::Client`], when
//!    [`DriverOptions::server`] is set) — the shared remote tier:
//!    consulted in each key space only after the local tiers missed,
//!    hits are written back locally, computed verdicts are written
//!    through, and *any* failure degrades to the local tiers (counted
//!    in [`FailureStats::server_down`], kept cheap by the client's
//!    circuit breaker — see `docs/ARCHITECTURE.md` §7);
//! 5. an actual VM execution plus output verification.
//!
//! Every verdict that reaches the in-memory caches is also appended to
//! the store, and the accepted references are recorded under the case
//! salt — the keys are salted content hashes, so a changed workload,
//! verifier input, or fuel budget changes every key and stale entries
//! are simply never consulted. Store hits are traced as
//! [`ProbeKind::StoreHit`] and counted into the existing effort
//! counters (`tests_dec_cached` for compile-free answers, `tests_cached`
//! for run-free answers); the store's own [`oraql_store::StoreStats`]
//! record the persistent-tier economics. Server hits are traced as
//! [`ProbeKind::ServerHit`] and counted in [`ProbeEffort::tests_server`];
//! the client's [`oraql_served::ClientStats`] record the remote-tier
//! economics.
//!
//! # Concurrency and determinism contract
//!
//! * With `jobs = 1` (the default) no worker pool exists, speculative
//!   handles are deferred, and the driver reproduces the sequential
//!   seed driver byte-for-byte: same probe order, same
//!   [`ProbeEffort`] counters, same final [`Decisions`].
//! * With `jobs > 1` the bisection strategies launch **speculative
//!   sibling probes** ([`Prober::probe_speculative`]) on a bounded
//!   [`WorkerPool`]; when the Fig. 2 deduction rule fires, the
//!   now-unneeded sibling is cancelled. In parallel mode every probe
//!   outcome is a pure function of the probed decision vector
//!   (compilation and the VM are deterministic, and cache hits report
//!   the freshly compiled unique-query count), so parallel runs are
//!   repeatable at any job count and decide the same queries as
//!   `jobs = 1`: the final decisions agree in
//!   [`Decisions::canonical`] form and all verification verdicts
//!   match. (Raw explicit vectors can differ in no-op trailing
//!   entries, because sequential mode preserves the seed driver's
//!   quirk of reporting the *first inserter's* unique count on an
//!   executable-cache hit.) Effort counters and cache-hit
//!   classifications may also differ — speculation executes extra
//!   probes — which is why Fig. 2/Fig. 4-style analysis should consume
//!   the probe trace ([`crate::trace`]) rather than raw counters.
//! * The test budget (`max_tests`) is accounted in executed tests; with
//!   speculation those include wasted probes, so budget-truncated runs
//!   are only guaranteed reproducible at `jobs = 1`.
//!
//! # The probe sandbox (failure model)
//!
//! Every probe attempt — compile, VM run, verification — executes under
//! `catch_unwind`, optionally under a wall-clock watchdog
//! ([`DriverOptions::probe_deadline`]), and optionally under a
//! deterministic fault-injection plan ([`DriverOptions::faults`], see
//! the `oraql-faults` crate). An attempt that panics, times out, traps
//! with an injected VM error, or produces garbled output is classified
//! as a [`ProbeFailure`] and retried with a short backoff
//! ([`DriverOptions::probe_retries`] times). A probe whose attempts are
//! all exhausted is **quarantined**: it answers with the pessimistic
//! may-alias verdict (`pass = false`, the always-safe direction — the
//! bisection strategies only ever *add* pessimism for failing probes,
//! and the final verification gate still backstops the result),
//! nothing is written to any cache or the persistent store, and the
//! answer is traced as [`ProbeKind::Faulted`]. Counts surface in
//! [`DriverResult::failures`]. A panic in the *baseline or final*
//! compile is not a probe failure — it fails the whole case with
//! [`DriverError::CasePanicked`] instead of unwinding through
//! [`run_suite`].

use crate::compile::{compile, CompileOptions, Compiled, Scope};
use crate::pass::{OptimismKind, OraqlStats, UniqueQuery};
use crate::pool::{CancelToken, WorkerPool};
use crate::sequence::Decisions;
use crate::strategy::{HintHandle, ProbeOutcome, Prober, SpeculativeProbe, Strategy};
use crate::trace::{ProbeEvent, ProbeKind, TraceSink};
use crate::verify::{Mismatch, Verifier};
use oraql_faults::{FaultInjector, FaultSite, InjectedPanic};
use oraql_ir::module::Module;
use oraql_obs::{Span, SpanSink};
use oraql_passes::Stats;
use oraql_store::Store;
use oraql_vm::{InterpMode, Interpreter, RunOutcome, VmFault};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// A benchmark handed to the driver: how to build the program, where
/// ORAQL may answer, and how to verify output.
pub struct TestCase {
    /// Benchmark name.
    pub name: String,
    /// Builds a fresh module (one "compilation" input). Must be
    /// deterministic: the driver compiles it many times, possibly from
    /// several probe threads at once.
    pub build: Arc<dyn Fn() -> Module + Send + Sync>,
    /// ORAQL scope restriction (files / target).
    pub scope: Scope,
    /// Ignore patterns for volatile output lines (see [`crate::textpat`]).
    pub ignore_patterns: Vec<String>,
    /// Extra acceptable reference outputs (the paper's multiple
    /// references for e.g. rank-dependent meshes).
    pub extra_references: Vec<String>,
    /// VM fuel per test run.
    pub fuel: u64,
    /// Register the CFL points-to analyses in the chain.
    pub use_cfl: bool,
    /// What optimistic answers mean (§VIII extension).
    pub optimism: crate::pass::OptimismKind,
}

impl TestCase {
    /// Convenience constructor with defaults.
    pub fn new(name: &str, build: impl Fn() -> Module + Send + Sync + 'static) -> Self {
        TestCase {
            name: name.to_owned(),
            build: Arc::new(build),
            scope: Scope::everything(),
            ignore_patterns: Vec::new(),
            extra_references: Vec::new(),
            fuel: oraql_vm::DEFAULT_FUEL,
            use_cfl: false,
            optimism: crate::pass::OptimismKind::NoAlias,
        }
    }
}

/// Driver options.
#[derive(Debug, Clone)]
pub struct DriverOptions {
    /// Bisection strategy.
    pub strategy: Strategy,
    /// Upper bound on executed tests (compiles still happen for cached
    /// verdicts).
    pub max_tests: u64,
    /// Record `-debug-pass=Executions` trace lines in the final compile.
    pub trace_passes: bool,
    /// Probe concurrency. `1` (the default) is the sequential seed
    /// driver; `N > 1` enables speculative sibling probes on an
    /// `N`-worker pool and the decisions-digest cache.
    pub jobs: usize,
    /// Speculation lookahead of the bisection DAG (CLI:
    /// `--speculate-depth`). `0` disables speculative probes entirely
    /// (parallel probes still share caches), `1` (the default) launches
    /// the immediate sibling of each blocking probe, and `>= 2`
    /// additionally warms outcome-conditioned grandchild probes up to
    /// `depth - 1` levels down. Ignored at `jobs = 1`: the sequential
    /// driver never speculates regardless of this setting.
    pub speculate_depth: u32,
    /// Dedup identical in-flight probes across the cases of a
    /// shared-cache suite run (CLI: `--no-cross-case-dedup` disables).
    /// The first prober to claim a decisions digest computes it and the
    /// rest subscribe to its verdict, and bit-identical programs under
    /// identical verification inputs share executable verdicts across
    /// differently-named cases. Only meaningful at `jobs > 1`; cannot
    /// change any decision — only which cache tier answers a probe.
    pub cross_case_dedup: bool,
    /// Probe-trace sink; every probe answer is recorded here.
    pub trace: Option<TraceSink>,
    /// Span sink (CLI: `--spans-out <path>`); when set, every case
    /// emits a `case > probe > compile|vm|verify|store|server` span
    /// tree reconstructing where wall clock went. Independent of the
    /// probe trace: spans carry timing topology, the trace carries
    /// verdicts.
    pub spans: Option<SpanSink>,
    /// Interpreter execution mode for every VM run the driver performs
    /// (baseline, probes, final). Both modes are observably identical —
    /// see `oraql_vm::decode` — so this only affects probe latency.
    pub interp: InterpMode,
    /// Persistent verdict store shared across processes (CLI:
    /// `--store <path>`). `None` (the default) keeps the seed behaviour:
    /// verdicts live and die with the process. With a store attached,
    /// cold runs write every verdict through, and warm runs answer
    /// probes without compiling — at *any* job count, including the
    /// sequential `jobs = 1` driver, whose probe order is a pure
    /// function of the answered outcomes and therefore replays
    /// identically from stored (pass, unique) pairs.
    pub store: Option<Arc<Store>>,
    /// Shared verdict-server client (CLI: `--server <addr>`), the
    /// third cache tier behind the in-memory caches and the local
    /// store. Lookups that miss locally are answered by the server and
    /// written back; computed verdicts are written through. Every
    /// server error degrades to the local tiers — the client's circuit
    /// breaker makes an unreachable server cost nothing after the
    /// first failed call, counted in [`FailureStats::server_down`].
    pub server: Option<Arc<oraql_served::Client>>,
    /// Deterministic fault-injection plan applied to the probe path
    /// (CLI: `--fault-plan <spec>`). `None` (the default) injects
    /// nothing; the sandbox around each probe is active either way.
    pub faults: Option<Arc<FaultInjector>>,
    /// Wall-clock deadline per probe attempt (CLI:
    /// `--probe-deadline-ms`). When set, each attempt runs on a
    /// watchdog thread and a timeout classifies as
    /// [`ProbeFailure::Deadline`]; when `None` (the default) attempts
    /// run inline with no extra thread, so the fault-free fast path
    /// pays nothing beyond a `catch_unwind`.
    pub probe_deadline: Option<Duration>,
    /// How many times a failed probe attempt is retried (with a short
    /// backoff) before the probe is quarantined to may-alias.
    pub probe_retries: u32,
    /// Ground-truth alias labels for the corpus soundness gate (see
    /// [`crate::truth`]). When set, every final verdict is
    /// cross-checked against the labels after verification; a kept
    /// optimistic answer on a pair labelled as genuinely aliasing fails
    /// the case with [`DriverError::SoundnessViolation`]. `None` (the
    /// default, and the only option for hand-written workloads) skips
    /// the check entirely. Labels are keyed by case name, so one
    /// merged map gates a whole suite run.
    pub ground_truth: Option<Arc<crate::truth::GroundTruth>>,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            strategy: Strategy::Chunked,
            max_tests: 4_096,
            trace_passes: false,
            jobs: 1,
            speculate_depth: 1,
            cross_case_dedup: true,
            trace: None,
            spans: None,
            interp: InterpMode::default(),
            store: None,
            server: None,
            faults: None,
            probe_deadline: None,
            probe_retries: 2,
            ground_truth: None,
        }
    }
}

/// Probing effort counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeEffort {
    /// Compilations performed.
    pub compiles: u64,
    /// Tests actually executed (VM run + verification).
    pub tests_run: u64,
    /// Tests skipped because a bit-identical executable was seen before.
    pub tests_cached: u64,
    /// Tests skipped by the Fig. 2 deduction rule.
    pub tests_deduced: u64,
    /// Probes answered from the decisions-digest cache without even
    /// recompiling (parallel driver only).
    pub tests_dec_cached: u64,
    /// Probes answered by the verdict server (either key space) after
    /// every local tier missed.
    pub tests_server: u64,
    /// Speculative sibling probes launched on the worker pool.
    pub spec_launched: u64,
    /// Speculative probes cancelled before their verdict was consumed
    /// (the deduction rule or a passing parent made them unnecessary).
    pub spec_cancelled: u64,
    /// Fire-and-forget grandchild warm-ups launched on the pool
    /// (`speculate_depth >= 2`).
    pub spec_hints: u64,
    /// Speculative probes that did real work (at least a compile)
    /// *after* their waiter had already cancelled them — wasted effort,
    /// traced as [`ProbeKind::Cancelled`]. Timing-dependent by nature,
    /// so always 0 at `jobs = 1`.
    pub spec_wasted: u64,
    /// Probes that joined an identical in-flight computation instead of
    /// compiling a duplicate (cross-case dedup).
    pub inflight_joins: u64,
}

/// Everything the driver learned about one benchmark.
pub struct DriverResult {
    /// Benchmark name.
    pub name: String,
    /// Did the fully-optimistic compile verify on the first try?
    pub fully_optimistic: bool,
    /// The final (locally maximal) decision source.
    pub decisions: Decisions,
    /// ORAQL query counters from the final compilation (Fig. 4 columns).
    pub oraql: OraqlStats,
    /// `# No-Alias Results` of the baseline compilation (Fig. 4
    /// "Original").
    pub no_alias_original: u64,
    /// `# No-Alias Results` of the final ORAQL compilation.
    pub no_alias_oraql: u64,
    /// Baseline pass statistics.
    pub baseline_stats: Stats,
    /// Final pass statistics.
    pub final_stats: Stats,
    /// Baseline execution (reference run).
    pub baseline_run: RunOutcome,
    /// Final execution.
    pub final_run: RunOutcome,
    /// Probing effort.
    pub effort: ProbeEffort,
    /// Sandbox failure counters (all zero on a healthy, fault-free run).
    pub failures: FailureStats,
    /// Unique queries of the final compilation (report input).
    pub queries: Vec<UniqueQuery>,
    /// The final optimized module.
    pub final_module: Module,
    /// Pass trace of the final compilation (when requested).
    pub pass_trace: Vec<String>,
    /// What the ground-truth gate saw (`Some` iff
    /// [`DriverOptions::ground_truth`] was set; always violation-free
    /// here, because violations fail the case instead).
    pub truth: Option<crate::truth::TruthReport>,
}

impl DriverResult {
    /// Relative change of no-alias results, the Fig. 4 `Δ` column.
    pub fn no_alias_delta_percent(&self) -> f64 {
        if self.no_alias_original == 0 {
            return 0.0;
        }
        (self.no_alias_oraql as f64 - self.no_alias_original as f64) / self.no_alias_original as f64
            * 100.0
    }
}

/// Driver errors.
#[derive(Debug)]
pub enum DriverError {
    /// The baseline compile did not verify against itself (broken case).
    BaselineBroken(Mismatch),
    /// The final sequence failed verification (driver bug).
    FinalBroken(Mismatch),
    /// The case's build closure (or a pass) panicked outside the probe
    /// sandbox — in the baseline or final compile, where no verdict can
    /// soak up the failure. The case fails; the suite keeps going.
    CasePanicked(String),
    /// An internal invariant broke but was caught instead of panicking.
    Internal(String),
    /// The ground-truth gate found a kept optimistic answer on a pair
    /// labelled as genuinely aliasing (see [`crate::truth`]): either a
    /// driver soundness bug or a mislabelled generator motif. The
    /// message lists every violating pair.
    SoundnessViolation(String),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::BaselineBroken(m) => write!(f, "baseline failed verification: {m}"),
            DriverError::FinalBroken(m) => write!(f, "final sequence failed verification: {m}"),
            DriverError::CasePanicked(m) => write!(f, "case panicked outside probing: {m}"),
            DriverError::Internal(m) => write!(f, "internal driver error: {m}"),
            DriverError::SoundnessViolation(m) => {
                write!(f, "ground-truth soundness gate failed: {m}")
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// Why one probe attempt failed inside the sandbox. Failures are
/// *attempt*-level: each one consumes a retry, and only a probe whose
/// attempts are all exhausted is quarantined to may-alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeFailure {
    /// The attempt panicked (injected `compile-panic`, or a genuine bug
    /// in the build closure / pass pipeline).
    Panic(String),
    /// The watchdog deadline expired before the attempt finished.
    Deadline,
    /// The VM refused the run with an injected error (`vm-trap`,
    /// `vm-fuel-lie`); a *genuine* trap is a failing verdict, not a
    /// probe failure.
    VmError(String),
    /// The probe ran but its observed output was garbled before
    /// verification (`output-garble` — corrupted probe I/O).
    OutputMismatch,
    /// A persistent-store hit was treated as checksum-corrupt and
    /// discarded (`store-read-corrupt`). Never consumes a retry: the
    /// attempt falls through to a real compile instead.
    StoreCorrupt,
    /// A verdict-server lookup failed (unreachable, timed out, or
    /// answered garbage). Never consumes a retry: the attempt falls
    /// back to the local tiers, exactly like [`ProbeFailure::StoreCorrupt`].
    ServerDown,
    /// The verdict server shed the request with `BUSY` (overload
    /// admission control). Never consumes a retry and never trips the
    /// client's breaker: the attempt falls straight back to the local
    /// tiers while the server digs itself out.
    ServerBusy,
}

impl std::fmt::Display for ProbeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeFailure::Panic(m) => write!(f, "probe panicked: {m}"),
            ProbeFailure::Deadline => write!(f, "probe deadline exceeded"),
            ProbeFailure::VmError(m) => write!(f, "injected VM error: {m}"),
            ProbeFailure::OutputMismatch => write!(f, "probe output garbled"),
            ProbeFailure::StoreCorrupt => write!(f, "store record corrupt"),
            ProbeFailure::ServerDown => write!(f, "verdict server unreachable"),
            ProbeFailure::ServerBusy => write!(f, "verdict server shed the request"),
        }
    }
}

/// Aggregated sandbox-failure counters for one driver run, surfaced in
/// [`DriverResult::failures`] and the CLI summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureStats {
    /// Attempts that panicked.
    pub panics: u64,
    /// Attempts that exceeded the probe deadline.
    pub deadlines: u64,
    /// Attempts killed by an injected VM error.
    pub vm_errors: u64,
    /// Attempts whose output was garbled before verification.
    pub output_mismatches: u64,
    /// Store hits discarded as corrupt (the attempt then recomputed).
    pub store_corrupt: u64,
    /// Verdict-server lookups that failed and fell back to the local
    /// tiers (the circuit breaker keeps these cheap).
    pub server_down: u64,
    /// Verdict-server requests shed with `BUSY` (overload, not
    /// failure); the attempt fell back to the local tiers.
    pub server_busy: u64,
    /// Failed attempts that were retried.
    pub retries: u64,
    /// Probes that exhausted every retry and degraded to may-alias.
    pub quarantined: u64,
}

impl FailureStats {
    /// Total attempt-level failures (excluding the retry tally).
    pub fn total(&self) -> u64 {
        self.panics
            + self.deadlines
            + self.vm_errors
            + self.output_mismatches
            + self.store_corrupt
            + self.server_down
            + self.server_busy
    }

    /// Did this run complete without a single sandbox event?
    pub fn is_quiet(&self) -> bool {
        *self == FailureStats::default()
    }
}

/// Thread-shared probe verdict caches. One instance may back a whole
/// suite run: the executable-hash key and the decisions digest are both
/// salted with the case name, so entries from different benchmarks
/// never collide even when their module text coincides (their verifier
/// references may differ).
#[derive(Debug, Default)]
pub struct VerdictCaches {
    /// executable hash -> (verdict, unique query count)
    exe: Mutex<HashMap<u64, (bool, u64)>>,
    /// decisions digest -> (verdict, unique query count)
    dec: Mutex<HashMap<u64, (bool, u64)>>,
    /// Decisions digests currently being computed somewhere in the
    /// suite (cross-case dedup): the first prober to claim a digest
    /// computes it, identical concurrent probes subscribe and re-read
    /// the decisions cache when the claim clears.
    inflight: Mutex<HashSet<u64>>,
    /// Notified whenever an in-flight claim is released.
    inflight_cv: std::sync::Condvar,
    /// Cross-case executable tier: verdicts keyed by *unsalted*
    /// content (references + ignore patterns + fuel + module text, but
    /// no case name), so bit-identical programs verified against
    /// identical references share verdicts across differently-named
    /// cases.
    exe_content: Mutex<HashMap<u64, (bool, u64)>>,
    /// Suite-global speculation priors: per query-index cluster,
    /// (dangerous, total) counts of range outcomes reported by the
    /// strategies. Earlier cases teach later ones which clusters tend
    /// to be clean — those subtrees are speculated first. Affects only
    /// pool scheduling priority, never a decision.
    priors: Mutex<Vec<(u64, u64)>>,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Query-index clusters for the speculation priors: indices are bucketed
/// in spans of 32, everything past the last bucket pools in the final
/// one. Coarse on purpose — the priors only rank hint priorities.
const PRIOR_BUCKETS: usize = 8;
const PRIOR_SPAN: u64 = 32;

/// Pool priority of sibling speculative probes. Far above any hint
/// priority (hints use the 0..=1000 permille prior directly), so a
/// probe whose verdict a waiter will block on always dequeues before
/// fill-the-idle-workers grandchild speculation.
const SIBLING_PRIORITY: i64 = 10_000;

impl VerdictCaches {
    /// Entries in the executable-hash cache.
    pub fn exe_entries(&self) -> usize {
        lock_ignore_poison(&self.exe).len()
    }

    /// Entries in the decisions-digest cache.
    pub fn dec_entries(&self) -> usize {
        lock_ignore_poison(&self.dec).len()
    }

    /// Entries in the cross-case content-keyed executable tier.
    pub fn content_entries(&self) -> usize {
        lock_ignore_poison(&self.exe_content).len()
    }

    fn prior_bucket(start: u64) -> usize {
        ((start / PRIOR_SPAN) as usize).min(PRIOR_BUCKETS - 1)
    }

    /// Records one settled range outcome into the priors.
    pub(crate) fn note_outcome(&self, start: u64, dangerous: bool) {
        let mut p = lock_ignore_poison(&self.priors);
        if p.is_empty() {
            p.resize(PRIOR_BUCKETS, (0, 0));
        }
        let b = Self::prior_bucket(start);
        p[b].1 += 1;
        if dangerous {
            p[b].0 += 1;
        }
    }

    /// Fraction of past *clean* outcomes in `start`'s cluster, scaled
    /// to 0..=1000. An empty cluster reads as 500 (no opinion), so
    /// unknown subtrees rank between known-clean and known-dangerous.
    pub(crate) fn clean_fraction_permille(&self, start: u64) -> i64 {
        let p = lock_ignore_poison(&self.priors);
        let Some(&(dangerous, total)) = p.get(Self::prior_bucket(start)) else {
            return 500;
        };
        if total == 0 {
            return 500;
        }
        (((total - dangerous) * 1000) / total) as i64
    }
}

fn module_text_hash(salt: u64, text: &str) -> u64 {
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    text.hash(&mut h);
    h.finish()
}

/// Registry handles for the probing driver, resolved once. Per-kind
/// probe counters are bumped in [`ProbeEngine::trace_event`] (the one
/// point every probe answer flows through, sink or no sink); the
/// funnel counters are bumped at each cache-tier site in
/// [`ProbeEngine::attempt`], so `dec_cache_hits + store_dec_hits +
/// server_dec_hits + compiles` accounts for every attempt that reached
/// the waterfall, and `compiles` fans out into the exe tiers the same
/// way.
struct DriverMetrics {
    probes: &'static oraql_obs::Counter,
    executed: &'static oraql_obs::Counter,
    exe_cache: &'static oraql_obs::Counter,
    dec_cache: &'static oraql_obs::Counter,
    store: &'static oraql_obs::Counter,
    server: &'static oraql_obs::Counter,
    deduced: &'static oraql_obs::Counter,
    faulted: &'static oraql_obs::Counter,
    spec_launched: &'static oraql_obs::Counter,
    spec_hints: &'static oraql_obs::Counter,
    spec_cancelled: &'static oraql_obs::Counter,
    spec_wasted: &'static oraql_obs::Counter,
    retries: &'static oraql_obs::Counter,
    quarantined: &'static oraql_obs::Counter,
    funnel_dec_cache_hits: &'static oraql_obs::Counter,
    funnel_inflight_joins: &'static oraql_obs::Counter,
    funnel_content_exe_hits: &'static oraql_obs::Counter,
    funnel_store_dec_hits: &'static oraql_obs::Counter,
    funnel_server_dec_hits: &'static oraql_obs::Counter,
    funnel_compiles: &'static oraql_obs::Counter,
    funnel_exe_cache_hits: &'static oraql_obs::Counter,
    funnel_store_exe_hits: &'static oraql_obs::Counter,
    funnel_server_exe_hits: &'static oraql_obs::Counter,
    funnel_vm_runs: &'static oraql_obs::Counter,
    probe_micros: &'static oraql_obs::Histogram,
    compile_micros: &'static oraql_obs::Histogram,
    vm_run_micros: &'static oraql_obs::Histogram,
    verify_micros: &'static oraql_obs::Histogram,
}

fn dmetrics() -> &'static DriverMetrics {
    static M: OnceLock<DriverMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = oraql_obs::global();
        DriverMetrics {
            probes: r.counter("oraql_driver_probes_total"),
            executed: r.counter("oraql_driver_probe_executed_total"),
            exe_cache: r.counter("oraql_driver_probe_exe_cache_total"),
            dec_cache: r.counter("oraql_driver_probe_dec_cache_total"),
            store: r.counter("oraql_driver_probe_store_total"),
            server: r.counter("oraql_driver_probe_server_total"),
            deduced: r.counter("oraql_driver_probe_deduced_total"),
            faulted: r.counter("oraql_driver_probe_faulted_total"),
            spec_launched: r.counter("oraql_driver_speculation_launched_total"),
            spec_hints: r.counter("oraql_driver_speculation_hints_total"),
            spec_cancelled: r.counter("oraql_driver_speculation_cancelled_total"),
            spec_wasted: r.counter("oraql_driver_speculation_wasted_total"),
            retries: r.counter("oraql_driver_retries_total"),
            quarantined: r.counter("oraql_driver_quarantined_total"),
            funnel_dec_cache_hits: r.counter("oraql_driver_funnel_dec_cache_hits_total"),
            funnel_inflight_joins: r.counter("oraql_driver_funnel_inflight_joins_total"),
            funnel_content_exe_hits: r.counter("oraql_driver_funnel_content_exe_hits_total"),
            funnel_store_dec_hits: r.counter("oraql_driver_funnel_store_dec_hits_total"),
            funnel_server_dec_hits: r.counter("oraql_driver_funnel_server_dec_hits_total"),
            funnel_compiles: r.counter("oraql_driver_funnel_compiles_total"),
            funnel_exe_cache_hits: r.counter("oraql_driver_funnel_exe_cache_hits_total"),
            funnel_store_exe_hits: r.counter("oraql_driver_funnel_store_exe_hits_total"),
            funnel_server_exe_hits: r.counter("oraql_driver_funnel_server_exe_hits_total"),
            funnel_vm_runs: r.counter("oraql_driver_funnel_vm_runs_total"),
            probe_micros: r.histogram("oraql_driver_probe_micros"),
            compile_micros: r.histogram("oraql_driver_compile_micros"),
            vm_run_micros: r.histogram("oraql_driver_vm_run_micros"),
            verify_micros: r.histogram("oraql_driver_verify_micros"),
        }
    })
}

fn decisions_digest(salt: u64, d: &Decisions) -> u64 {
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    d.render().hash(&mut h);
    h.finish()
}

/// Cache-key salt identifying one case within shared caches: a probe
/// verdict is only transferable between probes that agree on the case
/// name *and* the accepted references — the verdict of a bit-identical
/// module under a different verifier is a different fact.
fn case_salt(case: &TestCase, references: &[String]) -> u64 {
    let mut h = DefaultHasher::new();
    case.name.hash(&mut h);
    references.hash(&mut h);
    case.ignore_patterns.hash(&mut h);
    case.fuel.hash(&mut h);
    h.finish()
}

/// Like [`case_salt`] but *without* the case name: the key space of the
/// cross-case content tier. Two cases that build bit-identical modules
/// and verify them against identical references, ignore patterns, and
/// fuel produce the same content key — the verdict is the same fact
/// regardless of what the cases are called.
fn content_salt(case: &TestCase, references: &[String]) -> u64 {
    let mut h = DefaultHasher::new();
    references.hash(&mut h);
    case.ignore_patterns.hash(&mut h);
    case.fuel.hash(&mut h);
    h.finish()
}

/// The probe execution engine: everything needed to answer one probe,
/// shareable across the worker pool (`Sync`). The seed driver's
/// `compile_with` + `probe` logic lives here unchanged; the caches are
/// merely behind mutexes now.
struct ProbeEngine {
    case_name: String,
    salt: u64,
    build: Arc<dyn Fn() -> Module + Send + Sync>,
    scope: Scope,
    use_cfl: bool,
    optimism: OptimismKind,
    fuel: u64,
    interp: InterpMode,
    verifier: Verifier,
    /// Enables the decisions-digest cache (parallel mode only, so that
    /// `jobs = 1` reproduces seed effort counters exactly).
    use_dec_cache: bool,
    /// Enables cross-case dedup: in-flight digest claims plus the
    /// content-keyed executable tier. Implies `use_dec_cache` (gated on
    /// `jobs > 1 && cross_case_dedup`).
    dedupe: bool,
    /// Unsalted key base of the cross-case content tier (references +
    /// ignore patterns + fuel, no case name).
    content_salt: u64,
    caches: Arc<VerdictCaches>,
    /// Persistent write-through tier behind the in-memory caches.
    /// Consulted at any job count: stored outcomes are pure functions
    /// of the probed decision vector, so replaying them cannot perturb
    /// the bisection path.
    store: Option<Arc<Store>>,
    /// Remote read/write tier behind the local store: the shared
    /// verdict server. Consulted only after every local tier missed;
    /// hits are written back locally so the next miss stays local.
    server: Option<Arc<oraql_served::Client>>,
    effort: Mutex<ProbeEffort>,
    trace: Option<TraceSink>,
    trace_seq: AtomicU64,
    /// Span sink shared with the driver; `None` when spans are off.
    spans: Option<SpanSink>,
    /// Id of this case's root span (0 when spans are off), the parent
    /// of every probe span the engine opens.
    case_span: u64,
    /// Optional deterministic fault plan (chaos testing).
    faults: Option<Arc<FaultInjector>>,
    /// Optional wall-clock watchdog per attempt.
    deadline: Option<Duration>,
    /// Retries before a failing probe is quarantined.
    retries: u32,
    failures: Mutex<FailureStats>,
    /// Decisions digests whose probes exhausted every retry: answered
    /// may-alias immediately, never re-attempted, never persisted.
    quarantine: Mutex<HashSet<u64>>,
}

/// Faults pre-sampled for one probe attempt. Sampling happens on the
/// calling thread *before* any watchdog thread is spawned, so thread
/// timing can never perturb the deterministic fault stream.
#[derive(Debug, Clone, Copy, Default)]
struct AttemptFaults {
    compile_panic: bool,
    vm_fault: Option<VmFault>,
    delay: bool,
    hang: bool,
    garble: bool,
    store_read_corrupt: bool,
}

/// Fuel cap injected by `vm-fuel-lie`: big enough for the interpreter
/// to make a little progress, far too small for any real probe run.
const FUEL_LIE_CAP: u64 = 24;

/// The safe degradation verdict: may-alias, no unique-count claim.
const MAY_ALIAS: ProbeOutcome = ProbeOutcome {
    pass: false,
    unique: 0,
};

/// How [`ProbeEngine::claim_or_subscribe`] resolved a digest.
enum ClaimOutcome {
    /// This thread computes the digest. The guard (when present)
    /// releases the claim on every exit path, unwinds included; `None`
    /// means a subscription timed out and we compute unclaimed.
    Compute(Option<InflightClaim>),
    /// The in-flight claimer finished; its verdict was read back from
    /// the decisions cache.
    Answered(bool, u64),
    /// The advisory cancel token fired while subscribed.
    Cancelled,
}

/// RAII release of an in-flight digest claim (cross-case dedup).
struct InflightClaim {
    caches: Arc<VerdictCaches>,
    digest: u64,
}

impl Drop for InflightClaim {
    fn drop(&mut self) {
        lock_ignore_poison(&self.caches.inflight).remove(&self.digest);
        self.caches.inflight_cv.notify_all();
    }
}

/// Best-effort human-readable panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(ip) = p.downcast_ref::<InjectedPanic>() {
        ip.to_string()
    } else if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

impl ProbeEngine {
    fn effort(&self) -> MutexGuard<'_, ProbeEffort> {
        lock_ignore_poison(&self.effort)
    }

    fn trace_event(
        &self,
        digest: u64,
        kind: ProbeKind,
        pass: bool,
        unique: u64,
        speculative: bool,
        started: Instant,
    ) {
        let m = dmetrics();
        m.probes.inc();
        match kind {
            ProbeKind::Executed => m.executed.inc(),
            ProbeKind::ExeCacheHit => m.exe_cache.inc(),
            ProbeKind::DecisionCacheHit => m.dec_cache.inc(),
            ProbeKind::StoreHit => m.store.inc(),
            ProbeKind::ServerHit => m.server.inc(),
            ProbeKind::Deduced => m.deduced.inc(),
            ProbeKind::Faulted => m.faulted.inc(),
            ProbeKind::Cancelled => m.spec_wasted.inc(),
        }
        m.probe_micros.observe(started.elapsed().as_micros() as u64);
        if let Some(sink) = &self.trace {
            sink.record(ProbeEvent {
                case: self.case_name.clone(),
                seq: self.trace_seq.fetch_add(1, Ordering::Relaxed),
                digest,
                kind,
                pass,
                unique,
                speculative,
                wall_micros: started.elapsed().as_micros() as u64,
            });
        }
    }

    fn failures(&self) -> MutexGuard<'_, FailureStats> {
        lock_ignore_poison(&self.failures)
    }

    /// Makes a cancelled-but-executed speculative probe visible: the
    /// compile (and possibly the whole run) already happened, but no
    /// waiter will consume the verdict. Counted in
    /// [`ProbeEffort::spec_wasted`] and traced as
    /// [`ProbeKind::Cancelled`] so `oraql trace` can report waste.
    fn note_wasted(&self, digest: u64, pass: bool, unique: u64, started: Instant) {
        self.effort().spec_wasted += 1;
        self.trace_event(digest, ProbeKind::Cancelled, pass, unique, true, started);
    }

    /// Cross-case in-flight dedup: the first requester of a decisions
    /// digest claims it and computes; identical concurrent requesters
    /// subscribe, waking on claim releases to re-read the decisions
    /// cache. A subscriber that outwaits the probe deadline (the
    /// claimer hung, or was quarantined without caching anything)
    /// computes unclaimed rather than stalling — correctness never
    /// depends on the claim, it only avoids duplicate work. Claimers
    /// never wait, so the one waiting level cannot deadlock.
    fn claim_or_subscribe(&self, digest: u64, cancel: Option<&CancelToken>) -> ClaimOutcome {
        let give_up = Instant::now() + self.deadline.unwrap_or(Duration::from_secs(2));
        loop {
            {
                let mut set = lock_ignore_poison(&self.caches.inflight);
                if !set.contains(&digest) {
                    set.insert(digest);
                    return ClaimOutcome::Compute(Some(InflightClaim {
                        caches: Arc::clone(&self.caches),
                        digest,
                    }));
                }
                let (set, _) = self
                    .caches
                    .inflight_cv
                    .wait_timeout(set, Duration::from_millis(10))
                    .unwrap_or_else(|p| p.into_inner());
                drop(set);
            }
            if let Some(&(pass, unique)) = lock_ignore_poison(&self.caches.dec).get(&digest) {
                return ClaimOutcome::Answered(pass, unique);
            }
            if cancel.is_some_and(|t| t.is_cancelled()) {
                return ClaimOutcome::Cancelled;
            }
            if Instant::now() >= give_up {
                return ClaimOutcome::Compute(None);
            }
        }
    }

    /// Opens a child span under `parent` when span tracing is on.
    /// Returns `None` (zero cost beyond the branch) otherwise.
    fn span(&self, name: &'static str, parent: u64) -> Option<Span> {
        self.spans
            .as_ref()
            .map(|s| s.span(name, &self.case_name, parent))
    }

    /// Draws this attempt's fault decisions from the plan (all quiet
    /// when no plan is configured).
    fn sample_attempt(&self) -> AttemptFaults {
        let Some(inj) = &self.faults else {
            return AttemptFaults::default();
        };
        AttemptFaults {
            compile_panic: inj.fire(FaultSite::CompilePanic),
            vm_fault: if inj.fire(FaultSite::VmTrap) {
                Some(VmFault::Trap)
            } else if inj.fire(FaultSite::VmFuelLie) {
                Some(VmFault::FuelLie(FUEL_LIE_CAP))
            } else {
                None
            },
            delay: inj.fire(FaultSite::ProbeDelay),
            hang: inj.fire(FaultSite::ProbeHang),
            garble: inj.fire(FaultSite::OutputGarble),
            store_read_corrupt: inj.fire(FaultSite::StoreReadCorrupt),
        }
    }

    fn note_failure(&self, f: &ProbeFailure) {
        let mut fs = self.failures();
        match f {
            ProbeFailure::Panic(_) => fs.panics += 1,
            ProbeFailure::Deadline => fs.deadlines += 1,
            ProbeFailure::VmError(_) => fs.vm_errors += 1,
            ProbeFailure::OutputMismatch => fs.output_mismatches += 1,
            ProbeFailure::StoreCorrupt => fs.store_corrupt += 1,
            ProbeFailure::ServerDown => fs.server_down += 1,
            ProbeFailure::ServerBusy => fs.server_busy += 1,
        }
    }

    /// Answers one probe through the sandbox. Safe to call from any
    /// thread; never panics and never blocks past the configured
    /// deadline-per-attempt times the retry budget.
    fn execute(self: &Arc<Self>, d: &Decisions, speculative: bool) -> ProbeOutcome {
        // `None` can only mean "cancelled", which cannot happen without
        // a token — but degrade to may-alias rather than trust that.
        self.execute_sandboxed(d, speculative, None)
            .unwrap_or(MAY_ALIAS)
    }

    /// The sandboxed probe path: quarantine short-circuit, then up to
    /// `1 + retries` attempts, each under `catch_unwind` (plus a
    /// watchdog thread when a deadline is configured). Returns `None`
    /// only for a cancelled speculative probe.
    fn execute_sandboxed(
        self: &Arc<Self>,
        d: &Decisions,
        speculative: bool,
        cancel: Option<&CancelToken>,
    ) -> Option<ProbeOutcome> {
        let started = Instant::now();
        let digest = decisions_digest(self.salt, d);
        // The probe span covers the quarantine check, every retry, and
        // the degradation path; its guard records even if an attempt
        // unwinds past us.
        let probe_span = self.span("probe", self.case_span);
        let probe_id = probe_span.as_ref().map_or(0, Span::id);
        if lock_ignore_poison(&self.quarantine).contains(&digest) {
            self.trace_event(digest, ProbeKind::Faulted, false, 0, speculative, started);
            return Some(MAY_ALIAS);
        }
        let attempts = 1 + self.retries as u64;
        for attempt_no in 0..attempts {
            let fx = self.sample_attempt();
            let outcome = match self.deadline {
                Some(deadline) => {
                    self.attempt_with_deadline(d, speculative, cancel, fx, deadline, probe_id)
                }
                None => {
                    match catch_unwind(AssertUnwindSafe(|| {
                        self.attempt(d, speculative, cancel, fx, probe_id)
                    })) {
                        Ok(r) => r,
                        Err(p) => Err(ProbeFailure::Panic(panic_message(&*p))),
                    }
                }
            };
            match outcome {
                Ok(answer) => return answer, // Some(verdict) or cancelled
                Err(failure) => {
                    self.note_failure(&failure);
                    if attempt_no + 1 < attempts {
                        self.failures().retries += 1;
                        dmetrics().retries.inc();
                        // Tiny exponential backoff: transient scheduling
                        // or I/O hiccups clear, injected faults draw a
                        // fresh decision from the plan.
                        std::thread::sleep(Duration::from_millis(1 << attempt_no.min(4)));
                    }
                }
            }
        }
        // Every attempt failed: quarantine this decision vector and
        // degrade to the pessimistic verdict. Never cached, never
        // persisted — a later healthy run recomputes it for real.
        lock_ignore_poison(&self.quarantine).insert(digest);
        self.failures().quarantined += 1;
        dmetrics().quarantined.inc();
        self.trace_event(digest, ProbeKind::Faulted, false, 0, speculative, started);
        Some(MAY_ALIAS)
    }

    /// Runs one attempt on a watchdog thread and gives up after
    /// `deadline`. An orphaned attempt keeps running in the background;
    /// if it eventually completes, any verdict it wrote to the shared
    /// caches is genuine and safely reusable.
    fn attempt_with_deadline(
        self: &Arc<Self>,
        d: &Decisions,
        speculative: bool,
        cancel: Option<&CancelToken>,
        fx: AttemptFaults,
        deadline: Duration,
        probe_span: u64,
    ) -> Result<Option<ProbeOutcome>, ProbeFailure> {
        let (tx, rx) = channel();
        let engine = Arc::clone(self);
        let d = d.clone();
        let token = cancel.cloned();
        let spawned = std::thread::Builder::new()
            .name("oraql-probe-attempt".into())
            .spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    engine.attempt(&d, speculative, token.as_ref(), fx, probe_span)
                }));
                let _ = tx.send(r);
            });
        if spawned.is_err() {
            return Err(ProbeFailure::Panic("probe thread spawn failed".into()));
        }
        match rx.recv_timeout(deadline) {
            Ok(Ok(r)) => r,
            Ok(Err(p)) => Err(ProbeFailure::Panic(panic_message(&*p))),
            Err(_) => Err(ProbeFailure::Deadline),
        }
    }

    /// One raw probe attempt: decisions cache, store tier, compile,
    /// executable cache, then an actual execution — with `fx`'s faults
    /// injected at their sites. `Ok(None)` means the advisory cancel
    /// token fired: a cancelled speculative probe stops between the
    /// compile and the (usually much more expensive) test execution
    /// without recording a probe answer. The waiter recomputes inline
    /// in that case, so verdicts are never lost — only wasted work is.
    fn attempt(
        &self,
        d: &Decisions,
        speculative: bool,
        cancel: Option<&CancelToken>,
        fx: AttemptFaults,
        probe_span: u64,
    ) -> Result<Option<ProbeOutcome>, ProbeFailure> {
        let started = Instant::now();
        let digest = decisions_digest(self.salt, d);
        if self.use_dec_cache {
            if let Some(&(pass, unique)) = lock_ignore_poison(&self.caches.dec).get(&digest) {
                self.effort().tests_dec_cached += 1;
                dmetrics().funnel_dec_cache_hits.inc();
                self.trace_event(
                    digest,
                    ProbeKind::DecisionCacheHit,
                    pass,
                    unique,
                    speculative,
                    started,
                );
                return Ok(Some(ProbeOutcome { pass, unique }));
            }
        }
        if let Some(store) = &self.store {
            // Persistent decisions-digest tier: a previous process (or
            // an earlier case of this run) already answered this exact
            // decision vector — skip even the compile.
            let found = {
                let _s = self.span("store", probe_span);
                store.dec_verdict(digest)
            };
            if let Some((pass, unique)) = found {
                if fx.store_read_corrupt {
                    // Injected read-side rot: the hit fails its
                    // checksum, is discarded, and the attempt falls
                    // through to a real compile. No retry consumed —
                    // the recompute below is already the recovery.
                    self.note_failure(&ProbeFailure::StoreCorrupt);
                } else {
                    self.effort().tests_dec_cached += 1;
                    dmetrics().funnel_store_dec_hits.inc();
                    if self.use_dec_cache {
                        lock_ignore_poison(&self.caches.dec).insert(digest, (pass, unique));
                    }
                    self.trace_event(
                        digest,
                        ProbeKind::StoreHit,
                        pass,
                        unique,
                        speculative,
                        started,
                    );
                    return Ok(Some(ProbeOutcome { pass, unique }));
                }
            }
        }
        let server_dec = {
            let _s = self
                .server
                .is_some()
                .then(|| self.span("server", probe_span));
            self.server_get(digest, false)
        };
        if let Some((pass, unique)) = server_dec {
            // Server decisions-digest tier: another tenant (or an
            // earlier run of this machine) already answered this exact
            // decision vector. Write the verdict back through the
            // local tiers so the next miss never leaves the process.
            self.effort().tests_server += 1;
            dmetrics().funnel_server_dec_hits.inc();
            if self.use_dec_cache {
                lock_ignore_poison(&self.caches.dec).insert(digest, (pass, unique));
            }
            self.store_dec(digest, pass, unique);
            self.trace_event(
                digest,
                ProbeKind::ServerHit,
                pass,
                unique,
                speculative,
                started,
            );
            return Ok(Some(ProbeOutcome { pass, unique }));
        }
        if cancel.is_some_and(|t| t.is_cancelled()) {
            return Ok(None);
        }
        // Cross-case in-flight dedup: either claim this digest (and
        // compute below, releasing the claim on any exit) or subscribe
        // to the prober already computing it.
        let _claim = if self.dedupe {
            match self.claim_or_subscribe(digest, cancel) {
                ClaimOutcome::Compute(claim) => claim,
                ClaimOutcome::Answered(pass, unique) => {
                    {
                        let mut e = self.effort();
                        e.tests_dec_cached += 1;
                        e.inflight_joins += 1;
                    }
                    dmetrics().funnel_inflight_joins.inc();
                    self.trace_event(
                        digest,
                        ProbeKind::DecisionCacheHit,
                        pass,
                        unique,
                        speculative,
                        started,
                    );
                    return Ok(Some(ProbeOutcome { pass, unique }));
                }
                ClaimOutcome::Cancelled => return Ok(None),
            }
        } else {
            None
        };
        if fx.compile_panic {
            std::panic::panic_any(InjectedPanic("probe pass-pipeline compile"));
        }
        self.effort().compiles += 1;
        let compile_started = Instant::now();
        let compiled = {
            let _s = self.span("compile", probe_span);
            compile(
                &*self.build,
                &CompileOptions {
                    oraql: Some((d.clone(), self.scope.clone())),
                    use_cfl: self.use_cfl,
                    optimism: self.optimism,
                    ..CompileOptions::default()
                },
            )
        };
        {
            let m = dmetrics();
            m.funnel_compiles.inc();
            m.compile_micros
                .observe(compile_started.elapsed().as_micros() as u64);
        }
        let unique = compiled
            .oraql
            .as_ref()
            .map(|s| s.lock().stats.unique())
            .unwrap_or(0);
        let text = oraql_ir::printer::module_str(&compiled.module);
        let h = module_text_hash(self.salt, &text);
        let content_key = module_text_hash(self.content_salt, &text);
        let hit = lock_ignore_poison(&self.caches.exe).get(&h).copied();
        if let Some((pass, cached_unique)) = hit {
            self.effort().tests_cached += 1;
            dmetrics().funnel_exe_cache_hits.inc();
            // Sequential mode preserves the seed driver's quirk of
            // reporting the unique count recorded when the verdict was
            // first cached. Parallel mode reports the freshly compiled
            // count instead: cache insertion order is
            // scheduling-dependent under speculation, and the fresh
            // count makes every probe outcome a pure function of the
            // probed decision vector — which is what keeps the
            // bisection path (and the final decisions) identical across
            // job counts.
            let unique = if self.use_dec_cache {
                unique
            } else {
                cached_unique
            };
            if self.use_dec_cache {
                lock_ignore_poison(&self.caches.dec).insert(digest, (pass, unique));
            }
            self.store_dec(digest, pass, unique);
            self.server_put_dec(digest, pass, unique);
            self.trace_event(
                digest,
                ProbeKind::ExeCacheHit,
                pass,
                unique,
                speculative,
                started,
            );
            return Ok(Some(ProbeOutcome { pass, unique }));
        }
        if self.dedupe {
            // Cross-case content tier: a differently-named case with
            // identical verification inputs already ran this exact
            // executable. Adopt its verdict into this case's salted
            // tiers and skip the run.
            let content_hit = lock_ignore_poison(&self.caches.exe_content)
                .get(&content_key)
                .copied();
            if let Some((pass, _)) = content_hit {
                self.effort().tests_cached += 1;
                dmetrics().funnel_content_exe_hits.inc();
                // `dedupe` implies `use_dec_cache`, so the parallel
                // reporting rule applies: the freshly compiled unique
                // count keeps the outcome a pure function of the
                // decision vector.
                lock_ignore_poison(&self.caches.exe).insert(h, (pass, unique));
                lock_ignore_poison(&self.caches.dec).insert(digest, (pass, unique));
                self.store_dec(digest, pass, unique);
                self.server_put_dec(digest, pass, unique);
                self.trace_event(
                    digest,
                    ProbeKind::ExeCacheHit,
                    pass,
                    unique,
                    speculative,
                    started,
                );
                return Ok(Some(ProbeOutcome { pass, unique }));
            }
        }
        if let Some(store) = &self.store {
            // Persistent executable-hash tier: a previous process ran
            // this exact executable — reuse its verdict, skip the run.
            let found = {
                let _s = self.span("store", probe_span);
                store.exe_verdict(h)
            };
            if let Some((pass, stored_unique)) = found {
                if fx.store_read_corrupt {
                    // Same injected rot as the decisions tier above.
                    self.note_failure(&ProbeFailure::StoreCorrupt);
                } else {
                    self.effort().tests_cached += 1;
                    dmetrics().funnel_store_exe_hits.inc();
                    lock_ignore_poison(&self.caches.exe).insert(h, (pass, stored_unique));
                    // Same reporting rule as the in-memory hit above:
                    // the stored unique count *is* the first inserter's
                    // count.
                    let unique = if self.use_dec_cache {
                        unique
                    } else {
                        stored_unique
                    };
                    if self.use_dec_cache {
                        lock_ignore_poison(&self.caches.dec).insert(digest, (pass, unique));
                    }
                    self.store_dec(digest, pass, unique);
                    // Propagate the locally stored verdict to the
                    // shared server under both keys: local corpora
                    // seed the farm, not just the other way around.
                    self.server_put_exe(h, pass, stored_unique);
                    self.server_put_dec(digest, pass, unique);
                    self.trace_event(
                        digest,
                        ProbeKind::StoreHit,
                        pass,
                        unique,
                        speculative,
                        started,
                    );
                    return Ok(Some(ProbeOutcome { pass, unique }));
                }
            }
        }
        let server_exe = {
            let _s = self
                .server
                .is_some()
                .then(|| self.span("server", probe_span));
            self.server_get(h, true)
        };
        if let Some((pass, stored_unique)) = server_exe {
            // Server executable-hash tier: some tenant ran this exact
            // executable. Reuse its verdict, skip the run, and write it
            // back through every local tier; the decisions-digest key
            // is pushed to the server too, so the *next* tenant skips
            // even the compile.
            self.effort().tests_server += 1;
            dmetrics().funnel_server_exe_hits.inc();
            lock_ignore_poison(&self.caches.exe).insert(h, (pass, stored_unique));
            if let Some(store) = &self.store {
                let _ = store.record_exe(h, pass, stored_unique);
            }
            // Same unique-count reporting rule as the local exe tiers.
            let unique = if self.use_dec_cache {
                unique
            } else {
                stored_unique
            };
            if self.use_dec_cache {
                lock_ignore_poison(&self.caches.dec).insert(digest, (pass, unique));
            }
            self.store_dec(digest, pass, unique);
            self.server_put_dec(digest, pass, unique);
            self.trace_event(
                digest,
                ProbeKind::ServerHit,
                pass,
                unique,
                speculative,
                started,
            );
            return Ok(Some(ProbeOutcome { pass, unique }));
        }
        if cancel.is_some_and(|t| t.is_cancelled()) {
            // The compile above is already spent: record the waste
            // before abandoning the probe, so cancelled-but-executed
            // work is visible in the trace and the effort counters.
            self.note_wasted(digest, false, unique, started);
            return Ok(None);
        }
        if fx.delay || fx.hang {
            // `probe-delay` stays well under any reasonable deadline;
            // `probe-hang` overshoots the configured deadline so only
            // the watchdog can reclaim the slot (bounded regardless, so
            // a hang without a watchdog cannot stall the driver
            // forever).
            let dur = match (fx.hang, self.deadline) {
                (false, _) => Duration::from_millis(1),
                (true, Some(dl)) => dl.saturating_mul(4).min(Duration::from_secs(2)),
                (true, None) => Duration::from_millis(25),
            };
            std::thread::sleep(dur);
        }
        self.effort().tests_run += 1;
        dmetrics().funnel_vm_runs.inc();
        let vm_started = Instant::now();
        let run = {
            let _s = self.span("vm", probe_span);
            run_module_with(&compiled.module, self.fuel, self.interp, fx.vm_fault)
        };
        dmetrics()
            .vm_run_micros
            .observe(vm_started.elapsed().as_micros() as u64);
        if fx.vm_fault.is_some() {
            if let Err(e) = &run {
                // The injected trap / lying fuel budget killed the run:
                // a transient probe failure, not a verdict. (A program
                // that completes even under the lie produced genuine,
                // trustworthy output and is judged normally below.)
                return Err(ProbeFailure::VmError(e.clone()));
            }
        }
        let pass = match run {
            Ok(run) => {
                let mut stdout = run.stdout;
                if fx.garble {
                    stdout.push_str("\u{7f}garbled probe output\n");
                }
                let verify_started = Instant::now();
                let ok = {
                    let _s = self.span("verify", probe_span);
                    self.verifier.check(&stdout).is_ok()
                };
                dmetrics()
                    .verify_micros
                    .observe(verify_started.elapsed().as_micros() as u64);
                if fx.garble && !ok {
                    // We know the mismatch is our own corruption: a
                    // transient I/O failure, not a verdict. Nothing is
                    // cached.
                    return Err(ProbeFailure::OutputMismatch);
                }
                ok
            }
            Err(_) => false, // genuine traps count as verification failures
        };
        lock_ignore_poison(&self.caches.exe).insert(h, (pass, unique));
        if self.dedupe {
            lock_ignore_poison(&self.caches.exe_content).insert(content_key, (pass, unique));
        }
        if self.use_dec_cache {
            lock_ignore_poison(&self.caches.dec).insert(digest, (pass, unique));
        }
        if let Some(store) = &self.store {
            let _ = store.record_exe(h, pass, unique);
        }
        self.store_dec(digest, pass, unique);
        // Write the freshly computed verdict through to the shared
        // server under both key spaces: this is how one tenant's probe
        // bill becomes every tenant's warm cache.
        self.server_put_exe(h, pass, unique);
        self.server_put_dec(digest, pass, unique);
        self.trace_event(
            digest,
            ProbeKind::Executed,
            pass,
            unique,
            speculative,
            started,
        );
        Ok(Some(ProbeOutcome { pass, unique }))
    }

    /// Write-through of the probe's *answered outcome* under its
    /// decisions digest, so a warm run replays the exact (pass, unique)
    /// pair this run reported — including the sequential exe-cache
    /// quirk. Store I/O errors are deliberately swallowed: a read-only
    /// or full disk degrades the store to a read tier, it never fails a
    /// probe.
    fn store_dec(&self, digest: u64, pass: bool, unique: u64) {
        if let Some(store) = &self.store {
            let _ = store.record_dec(digest, pass, unique);
        }
    }

    /// Remote lookup in the requested key space. A failed call counts
    /// one [`ProbeFailure::ServerDown`] and reads as a miss — the
    /// attempt falls back to the local tiers, and the client's circuit
    /// breaker makes every call during the cooldown window free.
    fn server_get(&self, key: u64, exe: bool) -> Option<(bool, u64)> {
        let client = self.server.as_ref()?;
        let res = if exe {
            client.get_exe(key)
        } else {
            client.get_dec(key)
        };
        match res {
            Ok(found) => found,
            Err(oraql_served::ClientError::Busy) => {
                self.note_failure(&ProbeFailure::ServerBusy);
                None
            }
            Err(_) => {
                self.note_failure(&ProbeFailure::ServerDown);
                None
            }
        }
    }

    /// Remote write-through of a decisions-digest verdict. Errors are
    /// swallowed (the server is an accelerator, never a dependency);
    /// the client's own counters record them.
    fn server_put_dec(&self, digest: u64, pass: bool, unique: u64) {
        if let Some(client) = &self.server {
            let _ = client.put_dec(digest, pass, unique);
        }
    }

    /// Remote write-through of an executable-hash verdict (same error
    /// policy as [`ProbeEngine::server_put_dec`]).
    fn server_put_exe(&self, h: u64, pass: bool, unique: u64) {
        if let Some(client) = &self.server {
            let _ = client.put_exe(h, pass, unique);
        }
    }
}

/// A speculative probe in flight on the worker pool.
struct PendingProbe {
    rx: Receiver<ProbeOutcome>,
    token: CancelToken,
}

/// The probing driver.
pub struct Driver<'c> {
    case: &'c TestCase,
    opts: DriverOptions,
    engine: Arc<ProbeEngine>,
    pool: Option<Arc<WorkerPool>>,
    pending: HashMap<u64, PendingProbe>,
    /// Cancel tokens of live fire-and-forget hints, keyed by ticket.
    /// Uncancelled hints simply finish and warm the caches; their
    /// entries are dropped with the driver.
    hints: HashMap<u64, CancelToken>,
    next_ticket: u64,
}

impl<'c> Driver<'c> {
    /// Runs the full workflow on one case with private caches; a
    /// private worker pool is created when `opts.jobs > 1`.
    pub fn run(case: &'c TestCase, opts: DriverOptions) -> Result<DriverResult, DriverError> {
        let pool = (opts.jobs > 1).then(|| Arc::new(WorkerPool::new(opts.jobs)));
        Self::run_shared(case, opts, Arc::new(VerdictCaches::default()), pool)
    }

    /// [`Driver::run`] against caller-provided caches and worker pool,
    /// so a suite run shares both across benchmarks.
    pub fn run_shared(
        case: &'c TestCase,
        opts: DriverOptions,
        caches: Arc<VerdictCaches>,
        pool: Option<Arc<WorkerPool>>,
    ) -> Result<DriverResult, DriverError> {
        // The case span covers the whole workflow; the guards record on
        // every exit path, including `?` errors.
        let spans = opts.spans.clone();
        let case_root = spans.as_ref().map(|s| s.span("case", &case.name, 0));
        let case_id = case_root.as_ref().map_or(0, Span::id);
        let baseline_span = spans
            .as_ref()
            .map(|s| s.span("baseline", &case.name, case_id));
        // Step 1: baseline (ORAQL deactivated) — produces the reference.
        // A panicking build closure fails this case, not the suite.
        let baseline = catch_unwind(AssertUnwindSafe(|| {
            compile(&*case.build, &CompileOptions::baseline())
        }))
        .map_err(|p| DriverError::CasePanicked(panic_message(&*p)))?;
        let baseline_run = run_module(&baseline.module, case.fuel, opts.interp)
            .map_err(|e| DriverError::BaselineBroken(Mismatch::ExecutionFailed(e)))?;
        let mut references = vec![baseline_run.stdout.clone()];
        references.extend(case.extra_references.iter().cloned());
        let salt = case_salt(case, &references);
        let csalt = content_salt(case, &references);
        if let Some(store) = &opts.store {
            // Record the accepted references under the case salt: a
            // warm reader can tell *what* a salt's verdicts were
            // verified against, and the record doubles as an integrity
            // anchor (same salt ⇒ same references, by construction).
            let _ = store.record_references(salt, &references);
        }
        if let Some(server) = &opts.server {
            // Same anchor record, shared tier. Errors are swallowed:
            // an unreachable server degrades to the local store.
            let _ = server.put_refs(salt, &references);
        }
        let verifier = Verifier::new(references, &case.ignore_patterns);
        verifier
            .check(&baseline_run.stdout)
            .map_err(DriverError::BaselineBroken)?;
        drop(baseline_span);

        let engine = Arc::new(ProbeEngine {
            case_name: case.name.clone(),
            salt,
            build: Arc::clone(&case.build),
            scope: case.scope.clone(),
            use_cfl: case.use_cfl,
            optimism: case.optimism,
            fuel: case.fuel,
            interp: opts.interp,
            verifier,
            use_dec_cache: opts.jobs > 1,
            dedupe: opts.jobs > 1 && opts.cross_case_dedup,
            content_salt: csalt,
            caches,
            store: opts.store.clone(),
            server: opts.server.clone(),
            effort: Mutex::new(ProbeEffort::default()),
            trace: opts.trace.clone(),
            trace_seq: AtomicU64::new(0),
            spans: spans.clone(),
            case_span: case_id,
            faults: opts.faults.clone(),
            deadline: opts.probe_deadline,
            retries: opts.probe_retries,
            failures: Mutex::new(FailureStats::default()),
            quarantine: Mutex::new(HashSet::new()),
        });
        let mut driver = Driver {
            case,
            opts,
            engine,
            pool,
            pending: HashMap::new(),
            hints: HashMap::new(),
            next_ticket: 0,
        };

        // Step 2: the empty sequence — everything optimistic.
        let all_opt = Decisions::all_optimistic();
        let first = driver.probe(&all_opt);
        let (fully_optimistic, decisions) = if first.pass {
            (true, all_opt)
        } else {
            // Step 3: bisect.
            let d = driver.opts.strategy.solve(&mut driver);
            (false, d)
        };

        // Step 4: final compile + verification.
        let final_span = spans.as_ref().map(|s| s.span("final", &case.name, case_id));
        let final_opts = CompileOptions {
            oraql: Some((decisions.clone(), case.scope.clone())),
            use_cfl: case.use_cfl,
            trace_passes: driver.opts.trace_passes,
            optimism: case.optimism,
            ..CompileOptions::default()
        };
        let finalc = catch_unwind(AssertUnwindSafe(|| compile(&*case.build, &final_opts)))
            .map_err(|p| DriverError::CasePanicked(panic_message(&*p)))?;
        let final_run = run_module(&finalc.module, case.fuel, driver.opts.interp)
            .map_err(|e| DriverError::FinalBroken(Mismatch::ExecutionFailed(e)))?;
        driver
            .engine
            .verifier
            .check(&final_run.stdout)
            .map_err(DriverError::FinalBroken)?;
        drop(final_span);

        if let Some(store) = &driver.opts.store {
            // Checkpoint the journal once per case: bounds the loss
            // window on power failure without paying a sync per probe.
            let _s = spans.as_ref().map(|s| s.span("store", &case.name, case_id));
            let _ = store.sync();
        }
        if let Some(server) = &driver.opts.server {
            // Same checkpoint for the shared tier: ask the server to
            // group-fsync whatever this case appended.
            let _s = spans
                .as_ref()
                .map(|s| s.span("server", &case.name, case_id));
            let _ = server.sync();
        }
        let effort = *driver.engine.effort();
        let failures = *driver.engine.failures();
        let shared = finalc
            .oraql
            .as_ref()
            .ok_or_else(|| DriverError::Internal("final compile lost its oraql pass".into()))?;
        let st = shared.lock();
        // Corpus soundness gate: with ground truth attached, the final
        // verdicts — already observationally verified above — must also
        // agree with the by-construction labels. Runs after the final
        // verification so a violation really means "optimism survived
        // the whole workflow on a pair known to alias".
        let truth = driver
            .opts
            .ground_truth
            .as_ref()
            .map(|gt| gt.check(&case.name, &finalc.module, &st.queries, case.optimism));
        if let Some(t) = &truth {
            if !t.clean() {
                return Err(DriverError::SoundnessViolation(t.describe_violations()));
            }
        }
        Ok(DriverResult {
            name: case.name.clone(),
            fully_optimistic,
            decisions,
            oraql: st.stats,
            no_alias_original: baseline.no_alias_total,
            no_alias_oraql: finalc.no_alias_total,
            baseline_stats: baseline.stats,
            final_stats: finalc.stats.clone(),
            baseline_run,
            final_run,
            effort,
            failures,
            queries: st.queries.clone(),
            final_module: finalc.module.clone(),
            pass_trace: finalc.pass_trace.clone(),
            truth,
        })
    }

    /// Compiles with a fixed decision source, bypassing probe caching
    /// (used by tests and tooling that need the [`Compiled`] artifact).
    pub fn compile_with(&mut self, d: &Decisions) -> Compiled {
        self.engine.effort().compiles += 1;
        compile(
            &*self.case.build,
            &CompileOptions {
                oraql: Some((d.clone(), self.case.scope.clone())),
                use_cfl: self.case.use_cfl,
                optimism: self.case.optimism,
                ..CompileOptions::default()
            },
        )
    }
}

fn run_module(m: &Module, fuel: u64, mode: InterpMode) -> Result<RunOutcome, String> {
    run_module_with(m, fuel, mode, None)
}

fn run_module_with(
    m: &Module,
    fuel: u64,
    mode: InterpMode,
    fault: Option<VmFault>,
) -> Result<RunOutcome, String> {
    let main = m.find_func("main").ok_or("no main")?;
    let mut interp = Interpreter::new(m)
        .with_fuel(fuel)
        .with_mode(mode)
        .with_fault(fault);
    match interp.run(main, vec![]) {
        Ok(_) => Ok(RunOutcome {
            stdout: interp.stdout().to_owned(),
            stats: interp.stats(),
        }),
        Err(e) => Err(e.to_string()),
    }
}

impl Prober for Driver<'_> {
    fn probe(&mut self, d: &Decisions) -> ProbeOutcome {
        self.engine.execute(d, false)
    }

    fn budget_exceeded(&self) -> bool {
        // Panicked and timed-out attempts abort *before* the run-site
        // `tests_run` increment, so they must consume budget here —
        // otherwise a persistently failing probe environment (every
        // compile panicking, say) would let the bisection walk forever.
        // VM-error and output-mismatch failures already counted.
        let failed = {
            let f = self.engine.failures();
            f.panics + f.deadlines
        };
        self.engine.effort().tests_run + failed >= self.opts.max_tests
    }

    fn note_deduced(&mut self) {
        self.engine.effort().tests_deduced += 1;
        self.engine
            .trace_event(0, ProbeKind::Deduced, false, 0, false, Instant::now());
    }

    fn speculate_depth(&self) -> u32 {
        if self.pool.is_none() {
            return 0; // sequential mode never speculates
        }
        self.opts.speculate_depth
    }

    fn probe_speculative(&mut self, d: &Decisions) -> SpeculativeProbe {
        let deferred = SpeculativeProbe {
            decisions: d.clone(),
            ticket: None,
        };
        let Some(pool) = &self.pool else {
            // Sequential mode: defer — the probe runs inline at the
            // wait site, preserving the seed driver's probe order.
            return deferred;
        };
        if self.opts.speculate_depth == 0 {
            // Speculation disabled: the same deferred-inline flow as
            // sequential mode, just against the shared caches.
            return deferred;
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let (tx, rx) = channel();
        let token = CancelToken::default();
        let engine = Arc::clone(&self.engine);
        let decisions = d.clone();
        let job_token = token.clone();
        // Pre-sample the poison decision on the submitting thread so the
        // deterministic fault stream is independent of worker timing.
        let poison = self
            .opts
            .faults
            .as_ref()
            .is_some_and(|inj| inj.fire(FaultSite::WorkerPoison));
        let submitted = pool.submit_with_priority(SIBLING_PRIORITY, move || {
            if poison {
                // The worker dies before touching the probe; the pool
                // respawns a replacement, and the waiter observes the
                // dropped channel and recomputes inline.
                std::panic::panic_any(InjectedPanic("poisoned pool worker"));
            }
            if job_token.is_cancelled() {
                return;
            }
            let job_started = Instant::now();
            if let Some(o) = engine.execute_sandboxed(&decisions, true, Some(&job_token)) {
                if tx.send(o).is_err() {
                    // The waiter cancelled after this job was already
                    // dequeued: the probe ran to completion but nobody
                    // consumes its verdict — record the wasted work.
                    engine.note_wasted(
                        decisions_digest(engine.salt, &decisions),
                        o.pass,
                        o.unique,
                        job_started,
                    );
                }
            }
        });
        if submitted.is_err() {
            // The pool is already shut down (a suite teardown race):
            // fall back to the deferred-inline flow rather than panic.
            return deferred;
        }
        self.engine.effort().spec_launched += 1;
        dmetrics().spec_launched.inc();
        self.pending.insert(ticket, PendingProbe { rx, token });
        SpeculativeProbe {
            decisions: d.clone(),
            ticket: Some(ticket),
        }
    }

    fn wait_probe(&mut self, h: SpeculativeProbe) -> ProbeOutcome {
        match h.ticket.and_then(|t| self.pending.remove(&t)) {
            Some(p) => match p.rx.recv() {
                Ok(o) => o,
                // The job observed a (stale) cancellation or the pool is
                // shutting down; recompute inline — the caches make this
                // cheap if the work already happened.
                Err(_) => self.engine.execute(&h.decisions, false),
            },
            None => self.engine.execute(&h.decisions, false),
        }
    }

    fn cancel_probe(&mut self, h: SpeculativeProbe) {
        if let Some(p) = h.ticket.and_then(|t| self.pending.remove(&t)) {
            p.token.cancel();
            self.engine.effort().spec_cancelled += 1;
            dmetrics().spec_cancelled.inc();
        }
    }

    fn hint_probe(&mut self, d: &Decisions, start: u64) -> Option<HintHandle> {
        let pool = self.pool.as_ref()?;
        if self.opts.speculate_depth < 2 {
            return None;
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let token = CancelToken::default();
        let engine = Arc::clone(&self.engine);
        let decisions = d.clone();
        let job_token = token.clone();
        // Pre-sampled on the submitting thread, like sibling probes.
        let poison = self
            .opts
            .faults
            .as_ref()
            .is_some_and(|inj| inj.fire(FaultSite::WorkerPoison));
        // Likely-clean subtrees speculate first: a passing grandchild
        // verdict is the one the Fig. 2 deduction multiplies. Sibling
        // probes (`SIBLING_PRIORITY`) always outrank hints, so hints
        // only fill otherwise-idle workers.
        let priority = self.engine.caches.clean_fraction_permille(start);
        let submitted = pool.submit_with_priority(priority, move || {
            if poison {
                std::panic::panic_any(InjectedPanic("poisoned pool worker"));
            }
            if job_token.is_cancelled() {
                return;
            }
            // Fire-and-forget: the verdict is only wanted in the caches,
            // where a later blocking probe (here or in another case)
            // picks it up as a decision-cache hit or in-flight join.
            let _ = engine.execute_sandboxed(&decisions, true, Some(&job_token));
        });
        if submitted.is_err() {
            return None;
        }
        self.engine.effort().spec_hints += 1;
        dmetrics().spec_hints.inc();
        self.hints.insert(ticket, token);
        Some(HintHandle(ticket))
    }

    fn cancel_hint(&mut self, h: HintHandle) {
        if let Some(token) = self.hints.remove(&h.0) {
            token.cancel();
            self.engine.effort().spec_cancelled += 1;
            dmetrics().spec_cancelled.inc();
        }
    }

    fn note_range_outcome(&mut self, start: u64, dangerous: bool) {
        self.engine.caches.note_outcome(start, dangerous);
    }
}

/// Runs several cases concurrently (one driver thread per case, all at
/// once) and returns results in input order. This is the driver-level
/// parallelism used by the Fig. 4 harness across the sixteen
/// configurations. With `opts.jobs > 1` all drivers share one verdict
/// cache and one speculative-probe pool; with `jobs = 1` each driver is
/// fully independent, matching the seed behaviour.
pub fn run_many(
    cases: &[TestCase],
    opts: &DriverOptions,
) -> Vec<Result<DriverResult, DriverError>> {
    let shared = (opts.jobs > 1).then(|| {
        (
            Arc::new(VerdictCaches::default()),
            Arc::new(WorkerPool::new(opts.jobs)),
        )
    });
    let mut results: Vec<Option<Result<DriverResult, DriverError>>> =
        (0..cases.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, case) in cases.iter().enumerate() {
            let opts = opts.clone();
            let shared = shared.clone();
            handles.push((
                i,
                // The catch_unwind keeps a panicking driver thread from
                // propagating through scope() and aborting its siblings:
                // one broken case yields one Err, the rest still run.
                s.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| match shared {
                        Some((caches, pool)) => Driver::run_shared(case, opts, caches, Some(pool)),
                        None => Driver::run(case, opts),
                    }))
                    .unwrap_or_else(|p| Err(DriverError::CasePanicked(panic_message(&*p))))
                }),
            ));
        }
        for (i, h) in handles {
            results[i] = Some(
                h.join()
                    .unwrap_or_else(|p| Err(DriverError::CasePanicked(panic_message(&*p)))),
            );
        }
    });
    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|| Err(DriverError::Internal("case result missing".into()))))
        .collect()
}

/// Runs a suite under a global probe-concurrency budget: at most
/// `opts.jobs` cases probe at any moment, all sharing one
/// [`VerdictCaches`] and one [`WorkerPool`] for speculative siblings.
/// With `jobs = 1` the cases run strictly sequentially, reproducing the
/// seed CLI's `--all` behaviour exactly. Results are in input order.
pub fn run_suite(
    cases: &[TestCase],
    opts: &DriverOptions,
) -> Vec<Result<DriverResult, DriverError>> {
    if opts.jobs <= 1 {
        return cases
            .iter()
            .map(|c| {
                catch_unwind(AssertUnwindSafe(|| Driver::run(c, opts.clone())))
                    .unwrap_or_else(|p| Err(DriverError::CasePanicked(panic_message(&*p))))
            })
            .collect();
    }
    let caches = Arc::new(VerdictCaches::default());
    let pool = Arc::new(WorkerPool::new(opts.jobs));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<DriverResult, DriverError>>>> =
        (0..cases.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..opts.jobs.min(cases.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= cases.len() {
                    break;
                }
                // One panicking case must not take its worker (and the
                // cases it would have claimed next) with it.
                let r = catch_unwind(AssertUnwindSafe(|| {
                    Driver::run_shared(
                        &cases[i],
                        opts.clone(),
                        Arc::clone(&caches),
                        Some(Arc::clone(&pool)),
                    )
                }))
                .unwrap_or_else(|p| Err(DriverError::CasePanicked(panic_message(&*p))));
                *lock_ignore_poison(&results[i]) = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or_else(|| Err(DriverError::Internal("case result missing".into())))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Module, Ty, Value};

    /// A program with `danger` genuinely-aliasing pointer pairs (each in
    /// its own function, called with aliased arguments), `safe`
    /// non-aliasing pairs that still look may-aliasing to the
    /// conservative chain, and `inert` pairs whose answer no
    /// transformation acts on (these exercise the executable-hash
    /// cache).
    fn mixed_case(safe: usize, danger: usize, inert: usize) -> TestCase {
        TestCase::new("mixed", move || build_mixed(safe, danger, inert))
    }

    /// One opaque two-pointer kernel; `i` makes the name unique.
    fn add_worker(m: &mut Module, i: usize, kind: &str) -> oraql_ir::module::FunctionId {
        let mut b =
            FunctionBuilder::new(m, &format!("work_{kind}_{i}"), vec![Ty::Ptr, Ty::Ptr], None);
        b.set_src_file("kernel.c");
        let p = b.arg(0);
        let q = b.arg(1);
        if kind == "inert" {
            // A load the MemorySSA walk queries against the store, but
            // nothing is eliminable: decisions here do not change code.
            b.store(Ty::I64, Value::ConstInt(100), q);
            let l = b.load(Ty::I64, p);
            b.print("{}", vec![l]);
        } else {
            let l1 = b.load(Ty::I64, p);
            b.store(Ty::I64, Value::ConstInt(100), q);
            let l2 = b.load(Ty::I64, p); // stale if p==q answered no-alias
            let s = b.add(l1, l2);
            b.print("{}", vec![s]);
        }
        b.ret(None);
        b.finish()
    }

    fn build_mixed(safe: usize, danger: usize, inert: usize) -> Module {
        let mut m = Module::new("mixed");
        let workers_safe: Vec<_> = (0..safe).map(|i| add_worker(&mut m, i, "safe")).collect();
        let workers_danger: Vec<_> = (0..danger)
            .map(|i| add_worker(&mut m, i, "danger"))
            .collect();
        let workers_inert: Vec<_> = (0..inert).map(|i| add_worker(&mut m, i, "inert")).collect();
        let cells = 2 * (safe + danger + inert) + 2;
        let g = m.add_global("cells", 16 * cells as u64, vec![], false);
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.set_src_file("main.c");
        let mut cell = 0i64;
        let mut fresh = |b: &mut FunctionBuilder| {
            let p = b.gep(Value::Global(g), 16 * cell);
            cell += 1;
            p
        };
        for w in workers_safe {
            let p = fresh(&mut b);
            let q = fresh(&mut b);
            b.store(Ty::I64, Value::ConstInt(5), p);
            b.call(w, vec![p, q], None);
        }
        for w in workers_danger {
            let p = fresh(&mut b);
            b.store(Ty::I64, Value::ConstInt(5), p);
            b.call(w, vec![p, p], None); // aliased!
        }
        for w in workers_inert {
            let p = fresh(&mut b);
            let q = fresh(&mut b);
            b.store(Ty::I64, Value::ConstInt(7), p);
            b.call(w, vec![p, q], None);
        }
        b.ret(None);
        b.finish();
        m
    }

    #[test]
    fn fully_optimistic_case_short_circuits() {
        let case = mixed_case(3, 0, 0);
        let r = Driver::run(&case, DriverOptions::default()).unwrap();
        assert!(r.fully_optimistic);
        assert_eq!(r.oraql.unique_pessimistic, 0);
        assert!(r.oraql.unique_optimistic > 0);
        assert!(r.no_alias_oraql > r.no_alias_original);
        assert_eq!(r.effort.tests_run, 1);
    }

    #[test]
    fn dangerous_queries_pinned_pessimistic() {
        let case = mixed_case(4, 1, 0);
        let r = Driver::run(&case, DriverOptions::default()).unwrap();
        assert!(!r.fully_optimistic);
        assert!(r.oraql.unique_pessimistic >= 1);
        assert!(
            r.oraql.unique_optimistic > r.oraql.unique_pessimistic,
            "most queries should stay optimistic: {:?}",
            r.oraql
        );
        // Output is verified inside the driver; also cross-check here.
        assert_eq!(r.baseline_run.stdout, r.final_run.stdout);
    }

    #[test]
    fn frequency_space_strategy_also_works() {
        let case = mixed_case(4, 1, 0);
        let r = Driver::run(
            &case,
            DriverOptions {
                strategy: Strategy::FrequencySpace,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!r.fully_optimistic);
        assert_eq!(r.baseline_run.stdout, r.final_run.stdout);
        assert!(r.oraql.unique_optimistic > 0);
    }

    #[test]
    fn hash_cache_kicks_in() {
        let case = mixed_case(4, 2, 4);
        let r = Driver::run(&case, DriverOptions::default()).unwrap();
        // Different sequences frequently produce identical executables
        // (decisions on queries that no transformation acts on).
        assert!(
            r.effort.tests_cached > 0,
            "expected cache hits: {:?}",
            r.effort
        );
        assert!(r.effort.compiles >= r.effort.tests_run + r.effort.tests_cached);
    }

    #[test]
    fn run_many_preserves_order() {
        let cases = vec![mixed_case(2, 0, 0), mixed_case(3, 1, 0)];
        let rs = run_many(&cases, &DriverOptions::default());
        assert_eq!(rs.len(), 2);
        assert!(rs[0].as_ref().unwrap().fully_optimistic);
        assert!(!rs[1].as_ref().unwrap().fully_optimistic);
    }

    #[test]
    fn parallel_driver_matches_sequential_decisions() {
        for strategy in [Strategy::Chunked, Strategy::FrequencySpace] {
            let case = mixed_case(4, 2, 2);
            let seq = Driver::run(
                &case,
                DriverOptions {
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            let par = Driver::run(
                &case,
                DriverOptions {
                    strategy,
                    jobs: 4,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(seq.decisions, par.decisions, "{strategy:?}");
            assert_eq!(seq.fully_optimistic, par.fully_optimistic);
            assert_eq!(seq.final_run.stdout, par.final_run.stdout);
            assert!(par.effort.spec_launched > 0, "speculation should engage");
        }
    }

    #[test]
    fn shared_verdict_cache_hit_under_concurrency() {
        // Inert pairs make many decision vectors compile bit-identically,
        // so concurrent probes must land in the shared executable cache.
        let case = mixed_case(3, 2, 5);
        let caches = Arc::new(VerdictCaches::default());
        let pool = Arc::new(WorkerPool::new(4));
        let r = Driver::run_shared(
            &case,
            DriverOptions {
                jobs: 4,
                ..Default::default()
            },
            Arc::clone(&caches),
            Some(pool),
        )
        .unwrap();
        assert!(!r.fully_optimistic);
        assert!(
            r.effort.tests_cached > 0,
            "expected shared-cache hits: {:?}",
            r.effort
        );
        assert!(caches.exe_entries() > 0);
        assert!(caches.dec_entries() > 0);
    }

    #[test]
    fn run_suite_sequential_equals_bounded_parallel() {
        let cases = vec![
            mixed_case(2, 0, 0),
            mixed_case(3, 1, 0),
            mixed_case(2, 1, 2),
        ];
        let seq = run_suite(&cases, &DriverOptions::default());
        let par = run_suite(
            &cases,
            &DriverOptions {
                jobs: 3,
                ..Default::default()
            },
        );
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.decisions, b.decisions);
            assert_eq!(a.final_run.stdout, b.final_run.stdout);
        }
    }

    #[test]
    fn warm_store_replays_sequential_run_without_compiles() {
        let dir = std::env::temp_dir().join(format!("oraql_driver_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.journal");

        let case = mixed_case(4, 2, 2);
        let store = Arc::new(Store::open(&path).unwrap());
        let cold = Driver::run(
            &case,
            DriverOptions {
                store: Some(Arc::clone(&store)),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(cold.effort.tests_run > 0);
        assert!(store.stats().appends > 0, "{:?}", store.stats());
        drop(store);

        let store = Arc::new(Store::open(&path).unwrap());
        assert!(store.stats().recovered > 0);
        let warm = Driver::run(
            &case,
            DriverOptions {
                store: Some(Arc::clone(&store)),
                ..Default::default()
            },
        )
        .unwrap();
        // Every probe of the deterministic sequential run was answered
        // from the persistent decisions-digest tier: no compiles, no
        // tests, identical results.
        assert_eq!(warm.effort.tests_run, 0, "{:?}", warm.effort);
        assert_eq!(warm.effort.compiles, 0, "{:?}", warm.effort);
        assert!(warm.effort.tests_dec_cached > 0);
        assert_eq!(cold.decisions, warm.decisions);
        assert_eq!(cold.fully_optimistic, warm.fully_optimistic);
        assert_eq!(cold.final_run.stdout, warm.final_run.stdout);
        assert_eq!(cold.oraql, warm.oraql);
        assert!(store.stats().dec_hits > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_trace_records_all_probe_answers() {
        let sink = TraceSink::in_memory();
        let case = mixed_case(4, 1, 2);
        let r = Driver::run(
            &case,
            DriverOptions {
                trace: Some(sink.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let events = sink.events();
        let executed = events
            .iter()
            .filter(|e| e.kind == ProbeKind::Executed)
            .count() as u64;
        let cached = events
            .iter()
            .filter(|e| e.kind == ProbeKind::ExeCacheHit)
            .count() as u64;
        let deduced = events
            .iter()
            .filter(|e| e.kind == ProbeKind::Deduced)
            .count() as u64;
        assert_eq!(executed, r.effort.tests_run);
        assert_eq!(cached, r.effort.tests_cached);
        assert_eq!(deduced, r.effort.tests_deduced);
        // Sequential mode: per-case sequence numbers are contiguous.
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..events.len() as u64).collect::<Vec<_>>());
    }

    // --- probe-sandbox chaos tests -----------------------------------

    use oraql_faults::{FaultPlan, Rate};

    fn chaos_opts(plan: FaultPlan) -> DriverOptions {
        oraql_faults::quiet_injected_panics();
        DriverOptions {
            faults: Some(Arc::new(FaultInjector::new(plan))),
            ..Default::default()
        }
    }

    #[test]
    fn chaos_runs_are_deterministic_at_jobs_1() {
        let case = mixed_case(4, 2, 2);
        let run = || {
            Driver::run(&case, chaos_opts(FaultPlan::uniform(7, 1, 5)))
                .expect("chaos run completes")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.effort.tests_run, b.effort.tests_run);
        assert_eq!(a.final_run.stdout, b.final_run.stdout);
        assert!(
            !a.failures.is_quiet(),
            "a uniform 1/5 plan should actually fire: {:?}",
            a.failures
        );
    }

    #[test]
    fn always_failing_probes_quarantine_to_may_alias() {
        for strategy in [Strategy::Chunked, Strategy::FrequencySpace] {
            let plan = FaultPlan::quiet(3).with_rate(FaultSite::CompilePanic, Rate::always());
            let sink = TraceSink::in_memory();
            let mut opts = chaos_opts(plan);
            opts.strategy = strategy;
            opts.max_tests = 12; // attempts consume budget: keep the walk short
            opts.probe_retries = 1;
            opts.trace = Some(sink.clone());
            let case = mixed_case(3, 1, 0);
            let r = Driver::run(&case, opts).expect("sandbox must contain every panic");
            // With every probe compile panicking nothing can be *proven*
            // safe, so the driver degrades to pessimism — never to a
            // silently-wrong no-alias. Output correctness is untouched.
            assert!(!r.fully_optimistic, "{strategy:?}");
            assert!(r.failures.panics > 0, "{strategy:?}: {:?}", r.failures);
            assert!(r.failures.quarantined > 0, "{strategy:?}: {:?}", r.failures);
            assert_eq!(r.baseline_run.stdout, r.final_run.stdout);
            assert!(
                sink.events().iter().any(|e| e.kind == ProbeKind::Faulted),
                "{strategy:?}: quarantined probes must be visible in the trace"
            );
        }
    }

    #[test]
    fn panicking_build_closure_is_contained() {
        oraql_faults::quiet_injected_panics();
        let bad = TestCase::new("explodes", || -> Module {
            std::panic::panic_any(InjectedPanic("build closure"))
        });
        let cases = vec![bad, mixed_case(2, 0, 0)];
        for jobs in [1, 2] {
            let rs = run_suite(
                &cases,
                &DriverOptions {
                    jobs,
                    ..Default::default()
                },
            );
            assert!(
                matches!(rs[0], Err(DriverError::CasePanicked(_))),
                "jobs={jobs}: {:?}",
                rs[0].as_ref().err()
            );
            // The sibling case is unaffected by the panicking one.
            assert!(rs[1].as_ref().unwrap().fully_optimistic, "jobs={jobs}");
        }
    }

    #[test]
    fn corrupt_store_hits_are_discarded_and_recomputed() {
        let dir = std::env::temp_dir().join(format!("oraql_chaos_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.journal");
        let case = mixed_case(3, 1, 1);

        let store = Arc::new(Store::open(&path).unwrap());
        let cold = Driver::run(
            &case,
            DriverOptions {
                store: Some(Arc::clone(&store)),
                ..Default::default()
            },
        )
        .unwrap();
        drop(store);

        // Warm run, but every store hit is reported corrupt: the driver
        // must fall back to recomputing instead of trusting rotten data.
        let store = Arc::new(Store::open(&path).unwrap());
        let plan = FaultPlan::quiet(5).with_rate(FaultSite::StoreReadCorrupt, Rate::always());
        let mut opts = chaos_opts(plan);
        opts.store = Some(Arc::clone(&store));
        let warm = Driver::run(&case, opts).unwrap();
        assert!(warm.failures.store_corrupt > 0, "{:?}", warm.failures);
        assert!(warm.effort.tests_run > 0, "{:?}", warm.effort);
        assert_eq!(cold.decisions, warm.decisions);
        assert_eq!(cold.final_run.stdout, warm.final_run.stdout);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_workers_do_not_lose_verdicts() {
        let case = mixed_case(4, 2, 2);
        let seq = Driver::run(&case, DriverOptions::default()).unwrap();
        let plan = FaultPlan::quiet(11).with_rate(FaultSite::WorkerPoison, Rate::new(1, 3));
        let mut opts = chaos_opts(plan);
        opts.jobs = 4;
        let chaotic = Driver::run(&case, opts).unwrap();
        // A poisoned worker drops its result channel; the waiter
        // recomputes inline, so decisions and output are unchanged.
        assert_eq!(seq.decisions, chaotic.decisions);
        assert_eq!(seq.final_run.stdout, chaotic.final_run.stdout);
    }

    // --- speculation DAG / cross-case dedup ---------------------------

    /// Builds a ready-to-probe driver without running the workflow, so
    /// tests can exercise the [`Prober`] interface directly.
    fn test_driver<'c>(
        case: &'c TestCase,
        opts: DriverOptions,
        caches: Arc<VerdictCaches>,
        pool: Option<Arc<WorkerPool>>,
    ) -> Driver<'c> {
        let baseline = compile(&*case.build, &CompileOptions::baseline());
        let baseline_run = run_module(&baseline.module, case.fuel, opts.interp).unwrap();
        let references = vec![baseline_run.stdout];
        let salt = case_salt(case, &references);
        let csalt = content_salt(case, &references);
        let engine = Arc::new(ProbeEngine {
            case_name: case.name.clone(),
            salt,
            build: Arc::clone(&case.build),
            scope: case.scope.clone(),
            use_cfl: case.use_cfl,
            optimism: case.optimism,
            fuel: case.fuel,
            interp: opts.interp,
            verifier: Verifier::new(references, &case.ignore_patterns),
            use_dec_cache: opts.jobs > 1,
            dedupe: opts.jobs > 1 && opts.cross_case_dedup,
            content_salt: csalt,
            caches,
            store: None,
            server: None,
            effort: Mutex::new(ProbeEffort::default()),
            trace: opts.trace.clone(),
            trace_seq: AtomicU64::new(0),
            spans: None,
            case_span: 0,
            faults: opts.faults.clone(),
            deadline: opts.probe_deadline,
            retries: opts.probe_retries,
            failures: Mutex::new(FailureStats::default()),
            quarantine: Mutex::new(HashSet::new()),
        });
        Driver {
            case,
            opts,
            engine,
            pool,
            pending: HashMap::new(),
            hints: HashMap::new(),
            next_ticket: 0,
        }
    }

    #[test]
    fn cancelled_after_dequeue_reports_wasted_work() {
        let case = mixed_case(2, 1, 0);
        let sink = TraceSink::in_memory();
        // An always-on probe hang (25 ms without a deadline) holds the
        // worker between its post-compile cancel checkpoint and the
        // verdict send, so the cancel below reliably lands after the
        // compile was already spent.
        let plan = FaultPlan::quiet(3).with_rate(FaultSite::ProbeHang, Rate::always());
        let opts = DriverOptions {
            jobs: 2,
            trace: Some(sink.clone()),
            faults: Some(Arc::new(FaultInjector::new(plan))),
            ..Default::default()
        };
        let mut d = test_driver(&case, opts, Arc::new(VerdictCaches::default()), {
            Some(Arc::new(WorkerPool::new(1)))
        });
        let h = d.probe_speculative(&Decisions::Explicit {
            seq: vec![false],
            tail: true,
        });
        assert!(h.ticket.is_some(), "speculation should launch");
        // Wait until the worker is past the compile, then cancel.
        while d.engine.effort().compiles == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        d.cancel_probe(h);
        let deadline = Instant::now() + Duration::from_secs(30);
        while d.engine.effort().spec_wasted == 0 {
            assert!(
                Instant::now() < deadline,
                "cancelled-but-executed probe never reported waste: {:?}",
                d.engine.effort()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(d.engine.effort().spec_cancelled, 1);
        assert!(
            sink.events()
                .iter()
                .any(|e| e.kind == ProbeKind::Cancelled && e.speculative),
            "waste must be visible in the trace"
        );
    }

    #[test]
    fn content_tier_shares_verdicts_across_cases() {
        // Two cases building identical modules under different names:
        // the case-salted tiers cannot share, the content tier can.
        // Depth 0 keeps both runs deterministic (no pool probes).
        let a = TestCase::new("alpha", || build_mixed(3, 1, 1));
        let b = TestCase::new("beta", || build_mixed(3, 1, 1));
        let opts = DriverOptions {
            jobs: 2,
            speculate_depth: 0,
            ..Default::default()
        };
        let caches = Arc::new(VerdictCaches::default());
        let ra = Driver::run_shared(&a, opts.clone(), Arc::clone(&caches), None).unwrap();
        let rb = Driver::run_shared(&b, opts.clone(), Arc::clone(&caches), None).unwrap();
        assert!(ra.effort.tests_run > 0);
        assert!(caches.content_entries() > 0);
        // Every probe of case B rides on case A's verdicts: compiles
        // still happen (the content key needs the module text), but no
        // probe runs or verifies.
        assert_eq!(rb.effort.tests_run, 0, "{:?}", rb.effort);
        assert!(rb.effort.tests_cached > 0, "{:?}", rb.effort);
        assert_eq!(ra.decisions, rb.decisions);

        // With dedup off the second case pays its own probes.
        let off = DriverOptions {
            cross_case_dedup: false,
            ..opts
        };
        let caches = Arc::new(VerdictCaches::default());
        let _ = Driver::run_shared(&a, off.clone(), Arc::clone(&caches), None).unwrap();
        let rb2 = Driver::run_shared(&b, off, Arc::clone(&caches), None).unwrap();
        assert!(rb2.effort.tests_run > 0, "{:?}", rb2.effort);
        assert_eq!(caches.content_entries(), 0);
    }

    #[test]
    fn speculation_priors_rank_clean_clusters() {
        let c = VerdictCaches::default();
        assert_eq!(c.clean_fraction_permille(0), 500); // unknown: neutral
        c.note_outcome(0, false);
        c.note_outcome(0, false);
        c.note_outcome(0, true);
        assert_eq!(c.clean_fraction_permille(0), 666);
        c.note_outcome(40, true);
        assert_eq!(c.clean_fraction_permille(40), 0);
        assert_eq!(c.clean_fraction_permille(33), 0); // same 32-wide bucket
                                                      // Everything past the last bucket pools in the final one.
        c.note_outcome(10_000, false);
        assert_eq!(
            c.clean_fraction_permille(PRIOR_SPAN * PRIOR_BUCKETS as u64),
            1000
        );
    }

    #[test]
    fn depth_zero_disables_speculation_entirely() {
        let case = mixed_case(4, 2, 2);
        let seq = Driver::run(&case, DriverOptions::default()).unwrap();
        let par = Driver::run(
            &case,
            DriverOptions {
                jobs: 4,
                speculate_depth: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(par.effort.spec_launched, 0, "{:?}", par.effort);
        assert_eq!(par.effort.spec_hints, 0);
        assert_eq!(par.effort.spec_wasted, 0);
        assert_eq!(seq.decisions, par.decisions);
        assert_eq!(seq.final_run.stdout, par.final_run.stdout);
    }

    #[test]
    fn deep_speculation_matches_sequential_decisions() {
        for strategy in [Strategy::Chunked, Strategy::FrequencySpace] {
            let case = mixed_case(4, 2, 2);
            let seq = Driver::run(
                &case,
                DriverOptions {
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            let par = Driver::run(
                &case,
                DriverOptions {
                    strategy,
                    jobs: 4,
                    speculate_depth: 3,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(seq.decisions, par.decisions, "{strategy:?}");
            assert_eq!(seq.final_run.stdout, par.final_run.stdout);
            assert!(
                par.effort.spec_hints > 0,
                "{strategy:?}: grandchild hints should engage: {:?}",
                par.effort
            );
        }
    }
}
