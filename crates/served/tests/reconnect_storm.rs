//! Reconnect-storm behavior: a fleet of clients hammering a dead
//! server must all recover once it is revived on the same address, and
//! their jittered backoff must actually *spread* the reconnect wave
//! instead of synchronizing it (the thundering-herd failure mode).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use oraql_served::{backoff_delay, Client, ClientOptions, Server, ServerOptions};

/// N clients start against an address nothing listens on, retry
/// through their breakers, and must all converge — with their own data
/// intact — after the server comes up mid-storm on that same address.
#[test]
fn client_fleet_recovers_from_dead_then_revived_server() {
    const FLEET: usize = 8;

    let scratch = std::env::temp_dir().join(format!("oraql_storm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();

    // Reserve a concrete port by binding and dropping; the storm rages
    // against it while it is closed, then the server claims it.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };

    let barrier = Barrier::new(FLEET + 1);
    let revived = AtomicBool::new(false);
    let server_slot: std::sync::Mutex<Option<Server>> = std::sync::Mutex::new(None);

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for i in 0..FLEET as u64 {
            let (addr, barrier, revived) = (&addr, &barrier, &revived);
            handles.push(s.spawn(move || {
                let client = Client::with_options(
                    addr,
                    ClientOptions {
                        timeout: Duration::from_millis(300),
                        cooldown: Duration::from_millis(50),
                        max_retries: 2,
                        seed: 0xf1ee7 + i,
                        ..ClientOptions::default()
                    },
                );
                barrier.wait();
                let deadline = Instant::now() + Duration::from_secs(20);
                let mut failures_before_revival = 0u64;
                loop {
                    match client.put_dec(i, i % 2 == 0, i * 31) {
                        Ok(()) => break,
                        Err(_) => {
                            if !revived.load(Ordering::Acquire) {
                                failures_before_revival += 1;
                            }
                            assert!(
                                Instant::now() < deadline,
                                "client {i} never recovered after revival"
                            );
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
                let cs = client.stats();
                (i, failures_before_revival, cs)
            }));
        }

        // Let the fleet beat on the closed port for a bit, then revive.
        barrier.wait();
        std::thread::sleep(Duration::from_millis(400));
        let server = Server::start(&ServerOptions::new(&scratch), &addr).unwrap();
        revived.store(true, Ordering::Release);

        let mut results = Vec::new();
        for h in handles {
            results.push(h.join().unwrap());
        }
        // Every client genuinely weathered an outage (no lucky early
        // bind) and then recovered...
        for (i, failures, cs) in &results {
            assert!(*failures > 0, "client {i} never saw the outage: {cs}");
            assert!(cs.io_errors > 0 || cs.fast_fails > 0, "client {i}: {cs}");
        }
        // ...and the writes all landed.
        let check = Client::new(&addr);
        for i in 0..FLEET as u64 {
            assert_eq!(
                check.get_dec(i).unwrap(),
                Some((i % 2 == 0, i * 31)),
                "client {i}'s write lost in the storm"
            );
        }
        *server_slot.lock().unwrap() = Some(server);
    });

    server_slot
        .into_inner()
        .unwrap()
        .expect("server started")
        .shutdown()
        .unwrap();
    let _ = std::fs::remove_dir_all(&scratch);
}

/// The backoff schedule itself, asserted purely (no sockets, no
/// clocks): per-seed jitter de-correlates a fleet retrying the same
/// request at the same attempt, growth is exponential, and the cap
/// holds. This is the property that keeps a revived server from
/// eating a synchronized reconnect spike.
#[test]
fn jittered_backoff_spreads_a_synchronized_fleet() {
    let base = Duration::from_millis(10);
    let cap = Duration::from_millis(200);

    // A fleet that failed the same request at the same moment: the
    // jitter must fan their next attempts out, not stack them.
    let delays: Vec<Duration> = (0..64u64)
        .map(|seed| backoff_delay(0xf1ee7 + seed, 0xdead_beef, 1, base, cap))
        .collect();
    let mut distinct = delays.clone();
    distinct.sort();
    distinct.dedup();
    assert!(
        distinct.len() >= 32,
        "64 seeds produced only {} distinct first-retry delays",
        distinct.len()
    );
    for d in &delays {
        assert!(
            *d >= base / 2 && *d <= base,
            "attempt-1 delay {d:?} out of band"
        );
    }

    // Exponential growth with a hard cap, for every seed.
    for seed in 0..16u64 {
        let late = backoff_delay(seed, 1, 10, base, cap);
        assert!(late <= cap, "cap violated: {late:?}");
        assert!(late >= cap / 2, "late attempt under half the cap: {late:?}");
        let a1 = backoff_delay(seed, 1, 1, base, cap);
        let a4 = backoff_delay(seed, 1, 4, base, cap);
        assert!(
            a4 > a1,
            "no growth between attempt 1 ({a1:?}) and 4 ({a4:?})"
        );
    }

    // Determinism: the schedule is a pure function of its inputs.
    assert_eq!(
        backoff_delay(7, 42, 3, base, cap),
        backoff_delay(7, 42, 3, base, cap)
    );
}
