//! All-pairs alias-analysis evaluation — the counterpart of LLVM's
//! `-aa-eval` pass: query every pair of memory-access locations in a
//! function and tabulate the answers. Useful for comparing chains
//! (which analysis resolves what) independent of any transformation.

use crate::aa::AAManager;
use crate::location::{AliasResult, MemoryLocation};
use oraql_ir::module::{FunctionId, Module};

/// Tabulated results of one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AaEvalSummary {
    /// Pairs answered `NoAlias`.
    pub no_alias: u64,
    /// Pairs answered `MayAlias`.
    pub may_alias: u64,
    /// Pairs answered `MustAlias`.
    pub must_alias: u64,
    /// Pairs answered `PartialAlias`.
    pub partial_alias: u64,
}

impl AaEvalSummary {
    /// Total pairs queried.
    pub fn total(&self) -> u64 {
        self.no_alias + self.may_alias + self.must_alias + self.partial_alias
    }

    /// Percentage of definite (non-may) answers — the precision figure
    /// `-aa-eval` reports.
    pub fn definite_percent(&self) -> f64 {
        if self.total() == 0 {
            return 100.0;
        }
        (self.total() - self.may_alias) as f64 / self.total() as f64 * 100.0
    }
}

/// Evaluates all pairs of scalar memory accesses in `fid`.
pub fn evaluate_function(m: &Module, fid: FunctionId, aa: &mut AAManager) -> AaEvalSummary {
    let f = m.func(fid);
    let locs: Vec<MemoryLocation> = f
        .live_insts()
        .filter_map(|id| MemoryLocation::of_access(f, id))
        .collect();
    let mut s = AaEvalSummary::default();
    for (i, a) in locs.iter().enumerate() {
        for b in locs.iter().skip(i + 1) {
            match aa.alias(m, fid, a, b) {
                AliasResult::NoAlias => s.no_alias += 1,
                AliasResult::MayAlias => s.may_alias += 1,
                AliasResult::MustAlias => s.must_alias += 1,
                AliasResult::PartialAlias => s.partial_alias += 1,
            }
        }
    }
    s
}

/// Evaluates every function of the module and sums the tallies.
pub fn evaluate_module(m: &Module, aa: &mut AAManager) -> AaEvalSummary {
    let mut total = AaEvalSummary::default();
    for i in 0..m.funcs.len() {
        let s = evaluate_function(m, FunctionId(i as u32), aa);
        total.no_alias += s.no_alias;
        total.may_alias += s.may_alias;
        total.must_alias += s.must_alias;
        total.partial_alias += s.partial_alias;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicAA;
    use crate::tbaa::TypeBasedAA;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Module, TbaaTag, Ty, Value};

    fn sample() -> Module {
        let mut m = Module::new("t");
        let int = m.tbaa.add("int", TbaaTag::ROOT);
        let dbl = m.tbaa.add("double", TbaaTag::ROOT);
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr, Ty::Ptr], None);
        let x = b.alloca(16, "x");
        let y = b.alloca(16, "y");
        b.store_tbaa(Ty::I64, Value::ConstInt(1), x, int);
        b.store_tbaa(Ty::F64, Value::const_f64(1.0), y, dbl);
        b.store_tbaa(Ty::I64, Value::ConstInt(2), b.arg(0), int);
        b.store_tbaa(Ty::F64, Value::const_f64(2.0), b.arg(1), dbl);
        b.ret(None);
        b.finish();
        m
    }

    #[test]
    fn richer_chains_are_more_definite() {
        let m = sample();
        let mut basic_only = AAManager::new();
        basic_only.add(Box::new(BasicAA::new()));
        let s1 = evaluate_module(&m, &mut basic_only);

        let mut with_tbaa = AAManager::new();
        with_tbaa.add(Box::new(BasicAA::new()));
        with_tbaa.add(Box::new(TypeBasedAA::new()));
        let s2 = evaluate_module(&m, &mut with_tbaa);

        assert_eq!(s1.total(), s2.total());
        // arg0 vs arg1 is may for BasicAA alone; TBAA separates the
        // int/double accesses.
        assert!(s2.definite_percent() > s1.definite_percent());
        assert!(s2.no_alias > s1.no_alias);
    }

    #[test]
    fn empty_function_is_trivially_definite() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![], None);
        b.ret(None);
        let id = b.finish();
        let mut aa = AAManager::new();
        let s = evaluate_function(&m, id, &mut aa);
        assert_eq!(s.total(), 0);
        assert_eq!(s.definite_percent(), 100.0);
    }

    #[test]
    fn pair_count_is_n_choose_2() {
        let m = sample();
        let mut aa = AAManager::new();
        let s = evaluate_function(&m, oraql_ir::FunctionId(0), &mut aa);
        // 4 accesses -> 6 pairs.
        assert_eq!(s.total(), 6);
    }
}
