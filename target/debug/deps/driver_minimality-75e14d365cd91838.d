/root/repo/target/debug/deps/driver_minimality-75e14d365cd91838.d: tests/driver_minimality.rs

/root/repo/target/debug/deps/driver_minimality-75e14d365cd91838: tests/driver_minimality.rs

tests/driver_minimality.rs:
