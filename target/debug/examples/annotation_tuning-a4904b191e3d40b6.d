/root/repo/target/debug/examples/annotation_tuning-a4904b191e3d40b6.d: examples/annotation_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libannotation_tuning-a4904b191e3d40b6.rmeta: examples/annotation_tuning.rs Cargo.toml

examples/annotation_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
