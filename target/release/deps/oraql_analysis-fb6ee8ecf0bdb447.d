/root/repo/target/release/deps/oraql_analysis-fb6ee8ecf0bdb447.d: crates/analysis/src/lib.rs crates/analysis/src/aa.rs crates/analysis/src/aaeval.rs crates/analysis/src/andersen.rs crates/analysis/src/basic.rs crates/analysis/src/constraints.rs crates/analysis/src/domtree.rs crates/analysis/src/globals.rs crates/analysis/src/location.rs crates/analysis/src/loops.rs crates/analysis/src/memssa.rs crates/analysis/src/pointer.rs crates/analysis/src/scoped.rs crates/analysis/src/steens.rs crates/analysis/src/tbaa.rs

/root/repo/target/release/deps/liboraql_analysis-fb6ee8ecf0bdb447.rlib: crates/analysis/src/lib.rs crates/analysis/src/aa.rs crates/analysis/src/aaeval.rs crates/analysis/src/andersen.rs crates/analysis/src/basic.rs crates/analysis/src/constraints.rs crates/analysis/src/domtree.rs crates/analysis/src/globals.rs crates/analysis/src/location.rs crates/analysis/src/loops.rs crates/analysis/src/memssa.rs crates/analysis/src/pointer.rs crates/analysis/src/scoped.rs crates/analysis/src/steens.rs crates/analysis/src/tbaa.rs

/root/repo/target/release/deps/liboraql_analysis-fb6ee8ecf0bdb447.rmeta: crates/analysis/src/lib.rs crates/analysis/src/aa.rs crates/analysis/src/aaeval.rs crates/analysis/src/andersen.rs crates/analysis/src/basic.rs crates/analysis/src/constraints.rs crates/analysis/src/domtree.rs crates/analysis/src/globals.rs crates/analysis/src/location.rs crates/analysis/src/loops.rs crates/analysis/src/memssa.rs crates/analysis/src/pointer.rs crates/analysis/src/scoped.rs crates/analysis/src/steens.rs crates/analysis/src/tbaa.rs

crates/analysis/src/lib.rs:
crates/analysis/src/aa.rs:
crates/analysis/src/aaeval.rs:
crates/analysis/src/andersen.rs:
crates/analysis/src/basic.rs:
crates/analysis/src/constraints.rs:
crates/analysis/src/domtree.rs:
crates/analysis/src/globals.rs:
crates/analysis/src/location.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/memssa.rs:
crates/analysis/src/pointer.rs:
crates/analysis/src/scoped.rs:
crates/analysis/src/steens.rs:
crates/analysis/src/tbaa.rs:
