//! Tests of the paper's §VIII future-work extensions implemented here:
//! *blocking* conservative analyses (to categorize the effect of
//! already-known queries) and *optimistic must-alias* responses.

use oraql_suite::ir::builder::FunctionBuilder;
use oraql_suite::ir::{Module, Ty, Value};
use oraql_suite::oraql::compile::{compile, CompileOptions, Scope};
use oraql_suite::oraql::pass::OptimismKind;
use oraql_suite::oraql::{Decisions, Driver, DriverOptions, TestCase};
use oraql_suite::vm::Interpreter;

// ------------------------------------------------------- chain suppression

/// A module whose redundant load is resolved by TBAA (pointer-slot load
/// vs f64 store): suppressing TBAA sends the query to ORAQL instead.
fn tbaa_module() -> Module {
    let mut m = Module::new("t");
    let tag_d = m.tbaa.add("double", oraql_suite::ir::TbaaTag::ROOT);
    let tag_p = m.tbaa.add("any pointer", oraql_suite::ir::TbaaTag::ROOT);
    let g = m.add_global("data", 32, vec![], false);
    let slot = m.add_global("slot", 8, vec![], false);
    let mut b = FunctionBuilder::new(&mut m, "work", vec![Ty::Ptr, Ty::Ptr], None);
    b.set_src_file("k.c");
    let p = b.arg(0); // data pointer
    let q = b.arg(1); // pointer-slot pointer
    let l1 = b.load_tbaa(Ty::Ptr, q, tag_p);
    b.store_tbaa(Ty::F64, Value::const_f64(1.0), p, tag_d);
    let l2 = b.load_tbaa(Ty::Ptr, q, tag_p); // redundant; TBAA proves it
    let x = b.load_tbaa(Ty::F64, l1, tag_d);
    let y = b.load_tbaa(Ty::F64, l2, tag_d);
    let s = b.fadd(x, y);
    b.print("{}", vec![s]);
    b.ret(None);
    b.finish();
    let work = m.find_func("work").unwrap();
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    b.set_src_file("main.c");
    b.store_tbaa(Ty::Ptr, Value::Global(g), Value::Global(slot), tag_p);
    b.call(work, vec![Value::Global(g), Value::Global(slot)], None);
    b.ret(None);
    b.finish();
    m
}

#[test]
fn suppressing_tbaa_redirects_queries_to_oraql() {
    // Normal chain: TBAA answers the slot-vs-store query.
    let normal = compile(
        &tbaa_module,
        &CompileOptions::with_oraql(Decisions::all_pessimistic(), Scope::everything()),
    );
    let normal_unique = normal.oraql.as_ref().unwrap().lock().stats.unique();
    let normal_tbaa = normal.stats.get("alias analysis", "TypeBasedAA.answered");
    assert!(normal_tbaa > 0, "TBAA should answer something");

    // Suppressed chain: the same queries fall through to ORAQL.
    let mut opts = CompileOptions::with_oraql(Decisions::all_pessimistic(), Scope::everything());
    opts.suppress = vec!["TypeBasedAA".into()];
    let blocked = compile(&tbaa_module, &opts);
    let blocked_unique = blocked.oraql.as_ref().unwrap().lock().stats.unique();
    assert!(
        blocked_unique > normal_unique,
        "suppression must surface more last-resort queries: {normal_unique} -> {blocked_unique}"
    );
    // No-alias totals drop when an analysis is blocked (pessimistic
    // ORAQL does not make up for it).
    assert!(blocked.no_alias_total < normal.no_alias_total);
    // Semantics unchanged: suppression only loses information.
    let a = Interpreter::run_main(&normal.module).unwrap();
    let b = Interpreter::run_main(&blocked.module).unwrap();
    assert_eq!(a.stdout, b.stdout);
}

#[test]
fn suppressing_basicaa_floods_oraql() {
    let case = oraql_workloads::find_case("testsnap").unwrap();
    let mut opts = CompileOptions::with_oraql(Decisions::all_pessimistic(), Scope::everything());
    opts.suppress = vec!["BasicAA".into()];
    let blocked = compile(&*case.build, &opts);
    let normal = compile(
        &*case.build,
        &CompileOptions::with_oraql(Decisions::all_pessimistic(), Scope::everything()),
    );
    let bu = blocked.oraql.as_ref().unwrap().lock().stats.unique();
    let nu = normal.oraql.as_ref().unwrap().lock().stats.unique();
    assert!(
        bu > nu * 2,
        "BasicAA carries most of the chain: {nu} -> {bu}"
    );
}

// --------------------------------------------------- must-alias optimism

/// `work(p, q)`: store through p, load through q. The caller passes the
/// SAME address twice, but no analysis can see that.
fn must_module(aliased: bool) -> Module {
    let mut m = Module::new("must");
    let g = m.add_global("data", 32, vec![7, 0, 0, 0, 0, 0, 0, 0], false);
    let mut b = FunctionBuilder::new(&mut m, "work", vec![Ty::Ptr, Ty::Ptr], None);
    b.set_src_file("k.c");
    let p = b.arg(0);
    let q = b.arg(1);
    b.store(Ty::I64, Value::ConstInt(41), p);
    let x = b.load(Ty::I64, q);
    b.print("{}", vec![x]);
    b.ret(None);
    let work = b.finish();
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    b.set_src_file("main.c");
    let a0 = b.gep(Value::Global(g), 0);
    let a1 = b.gep(Value::Global(g), if aliased { 0 } else { 8 });
    b.call(work, vec![a0, a1], None);
    b.ret(None);
    b.finish();
    m
}

#[test]
fn must_alias_optimism_forwards_what_no_alias_cannot() {
    // NoAlias optimism: correct but cannot forward (the load reads 41
    // at run time either way; the optimization just skips the store as
    // a non-clobber and finds nothing older to reuse).
    let build = || must_module(true);
    let no_mode = compile(
        &build,
        &CompileOptions::with_oraql(Decisions::all_optimistic(), Scope::everything()),
    );
    let no_run = Interpreter::run_main(&no_mode.module).unwrap();
    assert!(no_run.stdout.contains("41"));

    // MustAlias optimism: the store is forwarded into the load — fewer
    // executed loads, same (correct!) output, because the pointers do
    // alias at run time.
    let mut opts = CompileOptions::with_oraql(Decisions::all_optimistic(), Scope::everything());
    opts.optimism = OptimismKind::MustAlias;
    let must_mode = compile(&build, &opts);
    let must_run = Interpreter::run_main(&must_mode.module).unwrap();
    assert_eq!(no_run.stdout, must_run.stdout);
    assert!(
        must_run.stats.loads < no_run.stats.loads,
        "must-alias optimism should delete the load: {} vs {}",
        must_run.stats.loads,
        no_run.stats.loads
    );
}

#[test]
fn wrong_must_alias_optimism_is_caught_and_bisected() {
    // Now the pointers do NOT alias: must-alias optimism would forward
    // 41 into a load that should read 7. The driver must pin it.
    let mut case = TestCase::new("must-disjoint", || must_module(false));
    case.optimism = OptimismKind::MustAlias;
    let r = Driver::run(&case, DriverOptions::default()).unwrap();
    assert!(!r.fully_optimistic);
    assert!(r.oraql.unique_pessimistic >= 1);
    // q reads data[1] (= 0); a wrong forward would print 41.
    assert_eq!(r.final_run.stdout.trim(), "0");

    // Under plain no-alias optimism the same program is fine fully
    // optimistically (skipping a truly-disjoint store is correct).
    let case2 = TestCase::new("must-disjoint-noalias", || must_module(false));
    let r2 = Driver::run(&case2, DriverOptions::default()).unwrap();
    assert!(r2.fully_optimistic);
}

#[test]
fn must_alias_optimism_verifies_on_aliased_case_via_driver() {
    let mut case = TestCase::new("must-aliased", || must_module(true));
    case.optimism = OptimismKind::MustAlias;
    let r = Driver::run(&case, DriverOptions::default()).unwrap();
    // The aliased wiring makes must-optimism *true*: fully optimistic.
    assert!(r.fully_optimistic, "{:?}", r.oraql);
    assert!(r.final_run.stats.loads <= r.baseline_run.stats.loads);
}
