/root/repo/target/release/deps/oraql_ir-a822f31456b9cd9b.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/inst.rs crates/ir/src/interner.rs crates/ir/src/meta.rs crates/ir/src/module.rs crates/ir/src/printer.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs

/root/repo/target/release/deps/liboraql_ir-a822f31456b9cd9b.rlib: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/inst.rs crates/ir/src/interner.rs crates/ir/src/meta.rs crates/ir/src/module.rs crates/ir/src/printer.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs

/root/repo/target/release/deps/liboraql_ir-a822f31456b9cd9b.rmeta: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/inst.rs crates/ir/src/interner.rs crates/ir/src/meta.rs crates/ir/src/module.rs crates/ir/src/printer.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/cfg.rs:
crates/ir/src/inst.rs:
crates/ir/src/interner.rs:
crates/ir/src/meta.rs:
crates/ir/src/module.rs:
crates/ir/src/printer.rs:
crates/ir/src/types.rs:
crates/ir/src/value.rs:
crates/ir/src/verify.rs:
