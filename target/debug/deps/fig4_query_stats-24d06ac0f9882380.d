/root/repo/target/debug/deps/fig4_query_stats-24d06ac0f9882380.d: crates/bench/benches/fig4_query_stats.rs

/root/repo/target/debug/deps/fig4_query_stats-24d06ac0f9882380: crates/bench/benches/fig4_query_stats.rs

crates/bench/benches/fig4_query_stats.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
