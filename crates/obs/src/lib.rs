//! Observability substrate for the ORAQL stack.
//!
//! Three pieces, all std-only:
//!
//! 1. A process-wide [`Registry`] of metrics — sharded atomic
//!    [`Counter`]s, [`Gauge`]s, and fixed-bucket log2 latency
//!    [`Histogram`]s — registered by static name and snapshot-able
//!    without stopping writers. The driver, worker pool, VM, verdict
//!    store, and served daemon all publish here; the CLI and the
//!    daemon's `METRICS` op render a [`Snapshot`] as Prometheus-style
//!    text exposition.
//! 2. Span tracing ([`SpanSink`] / [`SpanEvent`]) — a scoped-timer
//!    API feeding the same JSONL sink family as the probe trace, so a
//!    suite run emits a spans file (`case > probe > compile|vm|verify
//!    |store|server`) that reconstructs where wall clock went.
//! 3. The [`jsonl`] helpers shared with `oraql-core`'s probe trace so
//!    both sinks escape and format identically.
//! 4. The [`rng`] module — the repo's single splitmix64 definition,
//!    shared by the fault injector, the property tests, and the
//!    workload generator so seeds can't drift between harnesses.
//!
//! Everything is written for hot paths: counters are padded per-shard
//! atomics indexed by a thread-local, histograms bucket by leading
//! zeros, and span guards take one `Instant` on entry and one on drop.

pub mod jsonl;
mod registry;
pub mod rng;
mod span;

pub use registry::{global, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use span::{read_spans, Span, SpanEvent, SpanSink};
