//! Regenerates the paper's **Fig. 3**: the ORAQL debug output for the
//! TestSNAP OpenMP configuration — all pessimistically answered
//! non-cached queries, with the issuing pass, the containing scope and
//! source locations. Also prints the per-pass breakdown of optimistic
//! queries (the §V-D style attribution), then Criterion-times report
//! generation.

use criterion::{criterion_group, criterion_main, Criterion};
use oraql::report::{queries_by_pass, render_report, DumpFlags};
use oraql::{Driver, DriverOptions};
use oraql_bench::{print_table, run_config};

fn bench(c: &mut Criterion) {
    let case = oraql_workloads::find_case("testsnap_omp").unwrap();
    let r = Driver::run(
        &case,
        DriverOptions {
            trace_passes: true,
            ..Default::default()
        },
    )
    .unwrap();

    println!("\n### Fig. 3 — pessimistic queries of TestSNAP (OpenMP), with issuing pass\n");
    let text = render_report(
        &r.final_module,
        &r.queries,
        DumpFlags::pessimistic_only(),
        &r.pass_trace,
    );
    println!("{text}");
    println!(
        "(total: {} unique pessimistic, reused {} times from the cache)",
        r.oraql.unique_pessimistic, r.oraql.cached_pessimistic
    );

    // Per-pass attribution of unique queries (paper §V-D: Quicksilver's
    // 61% MemorySSA / 18% GVN breakdown).
    let (_, qs) = run_config("quicksilver");
    let by_pass = queries_by_pass(&qs.queries);
    let total: u64 = by_pass.iter().map(|(_, n)| n).sum();
    let rows: Vec<Vec<String>> = by_pass
        .iter()
        .map(|(p, n)| {
            vec![
                p.clone(),
                n.to_string(),
                format!("{:.1}%", *n as f64 / total as f64 * 100.0),
            ]
        })
        .collect();
    print_table(
        "Quicksilver — unique ORAQL queries by issuing pass",
        &["pass", "unique queries", "share"],
        &rows,
    );

    let mut g = c.benchmark_group("report");
    g.bench_function("render/testsnap_omp", |b| {
        b.iter(|| render_report(&r.final_module, &r.queries, DumpFlags::all(), &r.pass_trace))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
