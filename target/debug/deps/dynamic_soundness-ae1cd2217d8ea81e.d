/root/repo/target/debug/deps/dynamic_soundness-ae1cd2217d8ea81e.d: tests/dynamic_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_soundness-ae1cd2217d8ea81e.rmeta: tests/dynamic_soundness.rs Cargo.toml

tests/dynamic_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
