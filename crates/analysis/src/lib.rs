//! # oraql-analysis — the alias-analysis stack and supporting analyses
//!
//! Reproduces the part of LLVM's analysis infrastructure that the ORAQL
//! paper builds on:
//!
//! * [`location::MemoryLocation`] / [`location::LocationSize`] — what an
//!   alias query is about (pointer + size + access metadata),
//! * [`aa::AliasAnalysis`] / [`aa::AAManager`] — a *chain* of analyses
//!   queried lazily; the first definite (`NoAlias`/`MustAlias`) answer
//!   wins and `MayAlias` is the pessimistic fallback (paper §III),
//! * the conservative analyses: [`basic::BasicAA`], [`tbaa::TypeBasedAA`],
//!   [`scoped::ScopedNoAliasAA`], [`globals::GlobalsAA`],
//!   [`steens::SteensgaardAA`] and [`andersen::AndersenAA`] — mirroring
//!   LLVM 14's `{Basic, TypeBased, ScopedNoAlias, Globals, CFLSteens,
//!   CFLAnders}AA`,
//! * structural analyses shared by the transformation passes:
//!   [`domtree::DomTree`], [`loops::LoopForest`] and
//!   [`memssa::MemorySsa`].
//!
//! The ORAQL pass itself lives in the `oraql` crate and implements
//! [`aa::AliasAnalysis`]; the driver appends it at the *end* of the chain
//! so it only sees queries every conservative analysis gave up on.

pub mod aa;
pub mod aaeval;
pub mod andersen;
pub mod basic;
pub mod constraints;
pub mod domtree;
pub mod globals;
pub mod location;
pub mod loops;
pub mod memssa;
pub mod pointer;
pub mod scoped;
pub mod steens;
pub mod tbaa;

pub use aa::{AAManager, AliasAnalysis, QueryCtx, QueryRecord};
pub use location::{AliasResult, LocationSize, MemoryLocation};
