/root/repo/target/debug/deps/semantics-c19569a80064c8cb.d: crates/vm/tests/semantics.rs

/root/repo/target/debug/deps/semantics-c19569a80064c8cb: crates/vm/tests/semantics.rs

crates/vm/tests/semantics.rs:
