/root/repo/target/debug/deps/fig6_pass_stats-de7684f363b8980d.d: crates/bench/benches/fig6_pass_stats.rs

/root/repo/target/debug/deps/fig6_pass_stats-de7684f363b8980d: crates/bench/benches/fig6_pass_stats.rs

crates/bench/benches/fig6_pass_stats.rs:
