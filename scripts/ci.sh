#!/usr/bin/env sh
# Tier-1 gate (see README.md "CI / tier-1 gate"): offline release build,
# full test suite, formatting, and lints with warnings denied. Run from
# the repo root; exits non-zero on the first failure.
set -eux

cargo build --release --offline
cargo test -q --offline
# The differential suite is the equivalence gate for the two interpreter
# modes (tree-walk reference vs. pre-decoded executor); run it by name so
# a filtered `cargo test` invocation can never silently skip it.
cargo test -q --offline --test differential_interp
# The persistent verdict store's robustness gates (journal recovery,
# warm-run determinism), likewise by name.
cargo test -q --offline -p oraql-store
cargo test -q --offline --test store_persistence
# The probe sandbox's robustness gates: the fault-injection harness
# itself and the chaos suite over real workloads, likewise by name.
cargo test -q --offline -p oraql-faults
cargo test -q --offline --test chaos_faults
# The verdict server's gates: protocol/server/client unit suites and the
# end-to-end tier tests (warm replay, multi-tenant, fallback, recovery,
# protocol-doc drift), likewise by name.
cargo test -q --offline -p oraql-served
cargo test -q --offline --test served_roundtrip
# The observability gates: registry/span/exposition unit suites and the
# analyzer determinism tests (order insensitivity, jobs 1-vs-4
# agreement, span hierarchy, fig2-equals-CLI), likewise by name.
cargo test -q --offline -p oraql-obs
cargo test -q --offline --test obs_analyzer
# The scheduler-v2 gates: byte-identical jobs-1 runs at any speculation
# depth, decision/Fig.2 agreement across jobs x depth, chaos-under-
# speculation, and pool queue-depth gauge accounting, likewise by name.
cargo test -q --offline --test sched_determinism
cargo test -q --offline --test pool_shutdown
# The workload generator's gates: plan/motif/corpus unit suites and the
# end-to-end soundness gate (byte-identical regeneration, label/verdict
# agreement over jobs x depth, mislabel detection, chaos), by name.
cargo test -q --offline -p oraql-gen
cargo test -q --offline --test gen_soundness
# The wire-chaos gates: network fault injection against a live daemon,
# crash-point recovery torture (real child processes, killed and
# restarted), reconnect storms, and the ground-truth capstone — a
# generated corpus through a server under the full fault matrix with
# byte-identical verdicts — likewise by name.
cargo test -q --offline -p oraql-served --test wire_chaos
cargo test -q --offline -p oraql-served --test crash_torture
cargo test -q --offline -p oraql-served --test reconnect_storm
cargo test -q --offline --test chaos_net
cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings

# Warm-cache smoke: the same case twice against one journal — the
# second run must answer at least one probe from the store.
STORE_TMP="$(mktemp -d)"
trap 'rm -rf "$STORE_TMP"' EXIT
target/release/oraql -b testsnap --store "$STORE_TMP/verdicts.journal" > /dev/null
target/release/oraql -b testsnap --store "$STORE_TMP/verdicts.journal" \
    | grep -E 'store: [1-9][0-9]* hits'

# Served smoke: a daemon on an ephemeral port, the same case twice
# through --server — the second run must answer probes remotely.
SERVED_TMP="$(mktemp -d)"
SERVED_PID=""
trap 'rm -rf "$STORE_TMP" "$SERVED_TMP"; [ -n "$SERVED_PID" ] && kill "$SERVED_PID" 2>/dev/null || true' EXIT
target/release/oraql-served serve --dir "$SERVED_TMP/data" --listen 127.0.0.1:0 \
    > "$SERVED_TMP/log" &
SERVED_PID=$!
for _ in $(seq 1 100); do
    grep -q 'listening on' "$SERVED_TMP/log" 2>/dev/null && break
    sleep 0.1
done
SERVED_ADDR="$(sed -n 's/.*listening on \([^,]*\),.*/\1/p' "$SERVED_TMP/log")"
target/release/oraql-served ping "$SERVED_ADDR"
target/release/oraql -b testsnap --server "$SERVED_ADDR" > /dev/null
target/release/oraql -b testsnap --server "$SERVED_ADDR" \
    | grep -E 'client: [1-9][0-9]* hits'
kill "$SERVED_PID"
SERVED_PID=""

# Metrics smoke: one instrumented run must leave a non-zero probe
# counter in a parseable exposition, a round-trippable spans file, and
# an analyzer that accepts all three artifacts.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$STORE_TMP" "$SERVED_TMP" "$OBS_TMP"; [ -n "$SERVED_PID" ] && kill "$SERVED_PID" 2>/dev/null || true' EXIT
target/release/oraql -b testsnap --trace "$OBS_TMP/trace.jsonl" \
    --metrics-out "$OBS_TMP/metrics.prom" --spans-out "$OBS_TMP/spans.jsonl" \
    | grep -E 'probes: [1-9][0-9]* total'
grep -E '^oraql_driver_probes_total [1-9][0-9]*$' "$OBS_TMP/metrics.prom"
target/release/oraql trace --probes "$OBS_TMP/trace.jsonl" \
    --spans "$OBS_TMP/spans.jsonl" --check-metrics "$OBS_TMP/metrics.prom" \
    > /dev/null

# Generator smoke: a 64-case corpus materialized twice must be
# byte-identical, and the same plan must run green through the gated
# suite at jobs 4 (any kept optimism on an aliasing pair exits non-zero).
GEN_TMP="$(mktemp -d)"
trap 'rm -rf "$STORE_TMP" "$SERVED_TMP" "$OBS_TMP" "$GEN_TMP"; [ -n "$SERVED_PID" ] && kill "$SERVED_PID" 2>/dev/null || true' EXIT
GEN_PLAN='seed=2024,cases=64,per=3'
target/release/oraql gen --plan "$GEN_PLAN" --out "$GEN_TMP/a" > /dev/null
target/release/oraql gen --plan "$GEN_PLAN" --out "$GEN_TMP/b" > /dev/null
diff -r "$GEN_TMP/a" "$GEN_TMP/b"
target/release/oraql gen --plan "$GEN_PLAN" --run --jobs 4 \
    | grep -E 'suite: 64 ok, 0 failed'

# Chaos smoke: the whole suite under a fixed fault-plan seed matrix,
# byte-identical across two runs, plus a parallel poisoning pass.
sh scripts/chaos.sh
