/root/repo/target/debug/examples/offload_multi_target-02d9d0323dc88fcc.d: examples/offload_multi_target.rs

/root/repo/target/debug/examples/offload_multi_target-02d9d0323dc88fcc: examples/offload_multi_target.rs

examples/offload_multi_target.rs:
