//! Memory SSA: a sparse representation of memory def-use chains.
//!
//! Loads and stores are threaded through a single memory state; blocks
//! with multiple predecessors get (unpruned) memory phis. The *walker*
//! answers "what is the nearest access that may clobber this location?"
//! by stepping over intervening defs and querying the alias-analysis
//! chain for each — this is where the bulk of MemorySSA's alias queries
//! come from (the paper observes 61% of Quicksilver's optimistic queries
//! originate here).

use crate::aa::AAManager;
use crate::location::MemoryLocation;
use oraql_ir::cfg;
use oraql_ir::inst::InstId;
use oraql_ir::module::{Function, FunctionId, Module};
use oraql_ir::value::BlockId;
use std::collections::HashSet;

/// A memory access in the MemorySSA graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAccess {
    /// The memory state on function entry.
    LiveOnEntry,
    /// The merged state at the head of a multi-predecessor block.
    Phi(BlockId),
    /// The state produced by a memory-writing instruction.
    Def(InstId),
}

/// MemorySSA form of one function (structure only; clobber walks take
/// the AA manager as a parameter).
pub struct MemorySsa {
    /// Memory-writing instructions per block, in order.
    defs_in_block: Vec<Vec<InstId>>,
    /// Predecessor lists (cached).
    preds: Vec<Vec<BlockId>>,
    /// Maximum steps a clobber walk may take before giving up.
    pub walk_budget: usize,
}

impl MemorySsa {
    /// Builds MemorySSA structure for `f`.
    pub fn build(f: &Function) -> Self {
        let mut defs_in_block = vec![Vec::new(); f.blocks.len()];
        for (bi, block) in f.blocks.iter().enumerate() {
            for &id in &block.insts {
                if f.inst(id).writes_memory() {
                    defs_in_block[bi].push(id);
                }
            }
        }
        MemorySsa {
            defs_in_block,
            preds: cfg::predecessors(f),
            walk_budget: 200,
        }
    }

    /// The memory state at the *entry* of `bb`.
    pub fn entry_access(&self, bb: BlockId) -> MemAccess {
        if bb == Function::ENTRY {
            return MemAccess::LiveOnEntry;
        }
        match self.preds[bb.0 as usize].as_slice() {
            [] => MemAccess::LiveOnEntry, // unreachable block
            [p] if *p != bb => self.end_access(*p),
            _ => MemAccess::Phi(bb),
        }
    }

    /// The memory state at the *end* of `bb`.
    pub fn end_access(&self, bb: BlockId) -> MemAccess {
        match self.defs_in_block[bb.0 as usize].last() {
            Some(&d) => MemAccess::Def(d),
            None => self.entry_access(bb),
        }
    }

    /// The memory state just before instruction `id` in `f`.
    pub fn defining_access(&self, f: &Function, id: InstId) -> MemAccess {
        let bb = f.block_of(id);
        let block = &f.blocks[bb.0 as usize];
        let pos = block
            .insts
            .iter()
            .position(|&i| i == id)
            .expect("instruction in its block");
        // Nearest def strictly before `pos`.
        for &d in self.defs_in_block[bb.0 as usize].iter().rev() {
            let dpos = block
                .insts
                .iter()
                .position(|&i| i == d)
                .expect("def in block");
            if dpos < pos {
                return MemAccess::Def(d);
            }
        }
        self.entry_access(bb)
    }

    /// The memory state just before def `d` (its "incoming" state).
    pub fn access_before_def(&self, f: &Function, d: InstId) -> MemAccess {
        self.defining_access(f, d)
    }

    /// Walks upward from `start` to the nearest access that may clobber
    /// `loc`, querying `aa` to step over non-aliasing defs. Returns a
    /// `Phi` when the walk cannot resolve through a merge (conservative),
    /// or when the budget is exhausted at a def.
    pub fn clobber_walk(
        &self,
        m: &Module,
        func: FunctionId,
        aa: &mut AAManager,
        loc: &MemoryLocation,
        start: MemAccess,
    ) -> MemAccess {
        let mut visited_phis: HashSet<BlockId> = HashSet::new();
        let mut budget = self.walk_budget;
        self.walk(m, func, aa, loc, start, &mut visited_phis, &mut budget)
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        m: &Module,
        func: FunctionId,
        aa: &mut AAManager,
        loc: &MemoryLocation,
        mut access: MemAccess,
        visited_phis: &mut HashSet<BlockId>,
        budget: &mut usize,
    ) -> MemAccess {
        let f = m.func(func);
        loop {
            match access {
                MemAccess::LiveOnEntry => return MemAccess::LiveOnEntry,
                MemAccess::Def(d) => {
                    if *budget == 0 {
                        return MemAccess::Def(d); // give up: treat as clobber
                    }
                    *budget -= 1;
                    if aa.may_clobber(m, func, d, loc) {
                        return MemAccess::Def(d);
                    }
                    access = self.access_before_def(f, d);
                }
                MemAccess::Phi(bb) => {
                    if !visited_phis.insert(bb) || *budget == 0 {
                        return MemAccess::Phi(bb);
                    }
                    // Resolve through the merge only if every incoming
                    // path reaches the same clobber.
                    let mut results: Vec<MemAccess> = Vec::new();
                    for &p in &self.preds[bb.0 as usize] {
                        let r =
                            self.walk(m, func, aa, loc, self.end_access(p), visited_phis, budget);
                        results.push(r);
                    }
                    let first = results[0];
                    if results.iter().all(|&r| r == first) {
                        return first;
                    }
                    return MemAccess::Phi(bb);
                }
            }
        }
    }

    /// Total number of memory defs (diagnostic).
    pub fn num_defs(&self) -> usize {
        self.defs_in_block.iter().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicAA;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Module, Ty, Value};

    fn mgr() -> AAManager {
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        aa
    }

    #[test]
    fn straightline_walk_skips_noalias_store() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![], None);
        let x = b.alloca(8, "x");
        let y = b.alloca(8, "y");
        let s1 = b.store(Ty::I64, Value::ConstInt(1), x);
        b.store(Ty::I64, Value::ConstInt(2), y); // does not clobber x
        let l = b.load(Ty::I64, x);
        b.store(Ty::I64, l, y);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let mssa = MemorySsa::build(f);
        let load_id = f.blocks[0].insts[4];
        let loc = MemoryLocation::of_access(f, load_id).unwrap();
        let start = mssa.defining_access(f, load_id);
        // Defining access is the store to y...
        assert!(matches!(start, MemAccess::Def(_)));
        let mut aa = mgr();
        let clobber = mssa.clobber_walk(&m, id, &mut aa, &loc, start);
        // ...but the walk lands on the store to x.
        assert_eq!(clobber, MemAccess::Def(s1));
    }

    #[test]
    fn walk_reaches_live_on_entry() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        let x = b.alloca(8, "x");
        b.store(Ty::I64, Value::ConstInt(1), x);
        let l = b.load(Ty::I64, b.arg(0)); // arg cannot alias non-escaping alloca
        b.store(Ty::I64, l, x);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let mssa = MemorySsa::build(f);
        let load_id = f.blocks[0].insts[2];
        let loc = MemoryLocation::of_access(f, load_id).unwrap();
        let start = mssa.defining_access(f, load_id);
        let mut aa = mgr();
        assert_eq!(
            mssa.clobber_walk(&m, id, &mut aa, &loc, start),
            MemAccess::LiveOnEntry
        );
    }

    #[test]
    fn merge_with_divergent_clobbers_stops_at_phi() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::I1, Ty::Ptr], None);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(b.arg(0), t, e);
        b.switch_to(t);
        b.store(Ty::I64, Value::ConstInt(1), b.arg(1)); // clobbers
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        let l = b.load(Ty::I64, b.arg(1));
        b.print("{}", vec![l]);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let mssa = MemorySsa::build(f);
        let load_id = f.blocks[j.0 as usize].insts[0];
        let loc = MemoryLocation::of_access(f, load_id).unwrap();
        let start = mssa.defining_access(f, load_id);
        assert_eq!(start, MemAccess::Phi(j));
        let mut aa = mgr();
        // One path has a clobber, the other reaches entry: unresolved.
        assert_eq!(
            mssa.clobber_walk(&m, id, &mut aa, &loc, start),
            MemAccess::Phi(j)
        );
    }

    #[test]
    fn merge_with_identical_outcome_resolves() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::I1, Ty::Ptr], None);
        let x = b.alloca(8, "x");
        let s0 = b.store(Ty::I64, Value::ConstInt(7), b.arg(1));
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(b.arg(0), t, e);
        b.switch_to(t);
        b.store(Ty::I64, Value::ConstInt(1), x); // not aliasing arg
        b.br(j);
        b.switch_to(e);
        b.store(Ty::I64, Value::ConstInt(2), x); // not aliasing arg
        b.br(j);
        b.switch_to(j);
        let l = b.load(Ty::I64, b.arg(1));
        b.print("{}", vec![l]);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let mssa = MemorySsa::build(f);
        let load_id = f.blocks[j.0 as usize].insts[0];
        let loc = MemoryLocation::of_access(f, load_id).unwrap();
        let start = mssa.defining_access(f, load_id);
        let mut aa = mgr();
        // Both paths walk through their alloca stores to the arg store.
        assert_eq!(
            mssa.clobber_walk(&m, id, &mut aa, &loc, start),
            MemAccess::Def(s0)
        );
    }

    #[test]
    fn loop_phi_is_a_barrier() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        let p = b.arg(0);
        b.store(Ty::I64, Value::ConstInt(0), p);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(4), |b, i| {
            let addr = b.gep_scaled(p, i, 8, 0);
            b.store(Ty::I64, i, addr);
        });
        let l = b.load(Ty::I64, p);
        b.print("{}", vec![l]);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let mssa = MemorySsa::build(f);
        assert!(mssa.num_defs() >= 2);
        let exit = f.block_of(f.live_insts().last().unwrap());
        let load_id = f.blocks[exit.0 as usize].insts[0];
        let loc = MemoryLocation::of_access(f, load_id).unwrap();
        let start = mssa.defining_access(f, load_id);
        let mut aa = mgr();
        let r = mssa.clobber_walk(&m, id, &mut aa, &loc, start);
        // The store in the loop may clobber p[0]; the walk must not
        // claim LiveOnEntry.
        assert_ne!(r, MemAccess::LiveOnEntry);
    }
}
