//! Cold-suite scheduler benchmark: what cross-case dedup buys.
//!
//! Runs the full 16-configuration suite cold (fresh caches per leg) at
//! `--jobs` 1, 4, and 8 with `--speculate-depth 3`, once with the
//! suite-global dedup tiers on and once with `--no-cross-case-dedup`,
//! recording wall clock, total probe compiles, and in-flight joins per
//! leg. The JSON artifact (`$ORAQL_BENCH_OUT`, default
//! `BENCH_sched.json`) is the evidence for two claims:
//!
//! * dedup reduces total cold-suite probe compiles at `jobs > 1`
//!   (every in-flight join is a duplicate compile not paid for);
//! * at `jobs = 1` the knob is inert, so the cold wall clock does not
//!   regress (the on/off ratio is pure run-to-run noise).
//!
//! Not a criterion bench: each leg is a full driver suite run.

use std::time::Instant;

use oraql::{run_suite, DriverOptions};

struct Leg {
    jobs: usize,
    dedup: bool,
    wall_ms: f64,
    compiles: u64,
    joins: u64,
}

fn run_leg(jobs: usize, dedup: bool) -> Leg {
    let cases = oraql_workloads::all_cases();
    let opts = DriverOptions {
        jobs,
        speculate_depth: 3,
        cross_case_dedup: dedup,
        ..Default::default()
    };
    let t = Instant::now();
    let results = run_suite(&cases, &opts);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let (mut compiles, mut joins) = (0u64, 0u64);
    for r in results {
        let r = r.unwrap_or_else(|e| panic!("jobs {jobs} dedup {dedup}: {e}"));
        compiles += r.effort.compiles;
        joins += r.effort.inflight_joins;
    }
    Leg {
        jobs,
        dedup,
        wall_ms,
        compiles,
        joins,
    }
}

fn main() {
    let mut legs = Vec::new();
    for jobs in [1usize, 4, 8] {
        for dedup in [true, false] {
            let leg = run_leg(jobs, dedup);
            println!(
                "jobs {:>2}  dedup {:>5}  {:>10.1} ms  {:>5} compiles  {:>4} joins",
                leg.jobs, leg.dedup, leg.wall_ms, leg.compiles, leg.joins
            );
            legs.push(leg);
        }
    }

    let find = |jobs: usize, dedup: bool| -> &Leg {
        legs.iter()
            .find(|l| l.jobs == jobs && l.dedup == dedup)
            .unwrap()
    };
    let on: u64 = [4, 8].iter().map(|&j| find(j, true).compiles).sum();
    let off: u64 = [4, 8].iter().map(|&j| find(j, false).compiles).sum();
    let joins: u64 = [4, 8].iter().map(|&j| find(j, true).joins).sum();
    let jobs1_ratio = find(1, true).wall_ms / find(1, false).wall_ms;
    println!(
        "parallel cold compiles: {on} with dedup, {off} without ({joins} joins); \
         jobs-1 on/off wall ratio {jobs1_ratio:.3}"
    );
    assert!(joins > 0, "dedup never fired at jobs > 1");
    assert!(
        on <= off,
        "dedup increased parallel cold-suite compiles: {on} > {off}"
    );

    let rows: Vec<String> = legs
        .iter()
        .map(|l| {
            format!(
                "    {{\"jobs\": {}, \"dedup\": {}, \"wall_ms\": {:.2}, \
                 \"compiles\": {}, \"inflight_joins\": {}}}",
                l.jobs, l.dedup, l.wall_ms, l.compiles, l.joins
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sched_dedup\",\n  \"speculate_depth\": 3,\n  \
         \"parallel_compiles_dedup_on\": {on},\n  \
         \"parallel_compiles_dedup_off\": {off},\n  \
         \"parallel_inflight_joins\": {joins},\n  \
         \"jobs1_wall_on_off_ratio\": {jobs1_ratio:.4},\n  \
         \"legs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = std::env::var("ORAQL_BENCH_OUT").unwrap_or_else(|_| "BENCH_sched.json".into());
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
