//! Ablation studies of the design choices (not a paper figure, but the
//! analyses the paper's use cases 2 and 3 call for):
//!
//! 1. **Chain contribution** — block each conservative analysis (§VIII)
//!    and measure how many queries fall through to the last resort and
//!    how many no-alias answers are lost: which analysis carries the
//!    chain?
//! 2. **CFL analyses** — LLVM 14 ships Steensgaard/Andersen disabled by
//!    default; how many ORAQL queries would they absorb?
//! 3. **Bisection strategy** — chunked vs frequency-space probing
//!    effort on the configurations with dangerous queries.
//! 4. **Optimism kind** — §VIII: does answering `MustAlias` instead of
//!    `NoAlias` still verify, and what does it buy?

use criterion::{criterion_group, criterion_main, Criterion};
use oraql::compile::{compile, CompileOptions, Scope};
use oraql::pass::OptimismKind;
use oraql::{Decisions, Driver, DriverOptions, Strategy};
use oraql_bench::print_table;
use oraql_vm::Interpreter;
use oraql_workloads::find_case;

fn chain_contribution() {
    let configs = ["testsnap", "quicksilver", "lulesh"];
    let analyses = ["BasicAA", "ScopedNoAliasAA", "TypeBasedAA", "GlobalsAA"];
    let mut rows = Vec::new();
    for name in configs {
        let case = find_case(name).unwrap();
        let base = compile(
            &*case.build,
            &CompileOptions::with_oraql(Decisions::all_pessimistic(), Scope::everything()),
        );
        let base_unique = base.oraql.as_ref().unwrap().lock().stats.unique();
        for a in analyses {
            let mut opts =
                CompileOptions::with_oraql(Decisions::all_pessimistic(), Scope::everything());
            opts.suppress = vec![a.to_string()];
            let c = compile(&*case.build, &opts);
            let unique = c.oraql.as_ref().unwrap().lock().stats.unique();
            rows.push(vec![
                name.to_string(),
                a.to_string(),
                base_unique.to_string(),
                unique.to_string(),
                format!("{:+}", unique as i64 - base_unique as i64),
                base.no_alias_total.to_string(),
                c.no_alias_total.to_string(),
            ]);
        }
    }
    print_table(
        "Ablation 1 — blocking one conservative analysis (§VIII): last-resort queries and lost no-alias answers",
        &[
            "config",
            "blocked analysis",
            "ORAQL uniq (full chain)",
            "ORAQL uniq (blocked)",
            "Δ uniq",
            "no-alias (full)",
            "no-alias (blocked)",
        ],
        &rows,
    );
}

fn cfl_ablation() {
    let mut rows = Vec::new();
    for name in ["testsnap", "xsbench", "quicksilver", "minigmg_ompif"] {
        let case = find_case(name).unwrap();
        let without = compile(
            &*case.build,
            &CompileOptions::with_oraql(Decisions::all_pessimistic(), case.scope.clone()),
        );
        let mut opts = CompileOptions::with_oraql(Decisions::all_pessimistic(), case.scope.clone());
        opts.use_cfl = true;
        let with = compile(&*case.build, &opts);
        let wu = without.oraql.as_ref().unwrap().lock().stats.unique();
        let cu = with.oraql.as_ref().unwrap().lock().stats.unique();
        rows.push(vec![
            name.to_string(),
            wu.to_string(),
            cu.to_string(),
            format!("{:+}", cu as i64 - wu as i64),
            with.stats
                .get("alias analysis", "SteensgaardAA.answered")
                .to_string(),
            with.stats
                .get("alias analysis", "AndersenAA.answered")
                .to_string(),
        ]);
    }
    print_table(
        "Ablation 2 — adding the CFL points-to analyses to the chain (use case 3: analysis selection)",
        &[
            "config",
            "ORAQL uniq (default chain)",
            "ORAQL uniq (+CFL)",
            "Δ",
            "Steensgaard answered",
            "Andersen answered",
        ],
        &rows,
    );
}

fn strategy_ablation() {
    let mut rows = Vec::new();
    for name in ["testsnap_omp", "xsbench", "lulesh", "lulesh_mpi"] {
        let mut cells = vec![name.to_string()];
        for strategy in [Strategy::Chunked, Strategy::FrequencySpace] {
            let case = find_case(name).unwrap();
            let r = Driver::run(
                &case,
                DriverOptions {
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            cells.push(format!(
                "{} tests / {} cached / {} deduced -> {} pess",
                r.effort.tests_run,
                r.effort.tests_cached,
                r.effort.tests_deduced,
                r.oraql.unique_pessimistic
            ));
        }
        rows.push(cells);
    }
    print_table(
        "Ablation 3 — probing strategy on real configurations",
        &["config", "chunked", "frequency-space"],
        &rows,
    );
}

fn optimism_ablation() {
    let mut rows = Vec::new();
    for name in ["testsnap", "xsbench", "minigmg_ompif", "quicksilver"] {
        let mut case = find_case(name).unwrap();
        case.optimism = OptimismKind::MustAlias;
        let r = Driver::run(&case, DriverOptions::default()).unwrap();
        let base = compile(&*case.build, &CompileOptions::baseline());
        let base_run = Interpreter::run_main(&base.module).unwrap();
        rows.push(vec![
            name.to_string(),
            r.fully_optimistic.to_string(),
            r.oraql.unique_pessimistic.to_string(),
            base_run.stats.total_insts().to_string(),
            r.final_run.stats.total_insts().to_string(),
        ]);
    }
    print_table(
        "Ablation 4 — optimistic MustAlias responses (§VIII future work)",
        &[
            "config",
            "fully optimistic",
            "pess uniq",
            "insts (baseline)",
            "insts (must-optimism)",
        ],
        &rows,
    );
}

/// `-aa-eval`-style all-pairs precision per chain configuration.
fn aa_eval_precision() {
    use oraql_analysis::aaeval::evaluate_module;
    let mut rows = Vec::new();
    for name in ["testsnap", "xsbench", "quicksilver", "lulesh"] {
        let case = find_case(name).unwrap();
        let m = (case.build)();
        let mut cells = vec![name.to_string()];
        for use_cfl in [false, true] {
            let mut aa = oraql::compile::conservative_chain(&m, use_cfl);
            let s = evaluate_module(&m, &mut aa);
            cells.push(format!(
                "{:.1}% of {} pairs",
                s.definite_percent(),
                s.total()
            ));
        }
        rows.push(cells);
    }
    print_table(
        "Ablation 5 — all-pairs precision (`-aa-eval` analogue): definite answers per chain",
        &["config", "default chain", "default + CFL"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    chain_contribution();
    cfl_ablation();
    strategy_ablation();
    optimism_ablation();
    aa_eval_precision();

    // Criterion: suppression cost (the chain still runs, answers are
    // discarded) vs the normal chain.
    let case = find_case("testsnap").unwrap();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(20);
    g.bench_function("compile/full-chain", |b| {
        b.iter(|| {
            compile(
                &*case.build,
                &CompileOptions::with_oraql(Decisions::all_pessimistic(), Scope::everything()),
            )
        })
    });
    g.bench_function("compile/basicaa-blocked", |b| {
        b.iter(|| {
            let mut opts =
                CompileOptions::with_oraql(Decisions::all_pessimistic(), Scope::everything());
            opts.suppress = vec!["BasicAA".into()];
            compile(&*case.build, &opts)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
