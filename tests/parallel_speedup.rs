//! Wall-clock contract of `--jobs N`: probe latency overlaps on the
//! worker pool, so a suite run with `jobs > 1` is measurably faster
//! than the sequential driver whenever probes spend time waiting.
//!
//! In the paper's setting a probe spawns an external compiler and a
//! benchmark run, so the driver mostly waits — exactly the latency this
//! test models by injecting a sleep into the build callback. That makes
//! the test meaningful even on a single-core host: sleeping probes
//! overlap where CPU-bound ones cannot. (On a multi-core host the
//! in-process VM probes of the real workload registry overlap too; see
//! `docs/ARCHITECTURE.md`.)

use std::time::{Duration, Instant};

use oraql::{run_suite, DriverOptions};
use oraql_workloads as workloads;

const PROBE_LATENCY: Duration = Duration::from_millis(30);

/// The named workloads, with `PROBE_LATENCY` of artificial wait added
/// to every module build (i.e. to every probe compile).
fn sleepy_cases(names: &[&str]) -> Vec<oraql::TestCase> {
    names
        .iter()
        .map(|name| {
            let mut case = workloads::find_case(name).expect(name);
            let inner = case.build.clone();
            case.build = std::sync::Arc::new(move || {
                std::thread::sleep(PROBE_LATENCY);
                inner()
            });
            case
        })
        .collect()
}

fn suite_wall(cases: &[oraql::TestCase], jobs: usize) -> Duration {
    let opts = DriverOptions {
        jobs,
        ..Default::default()
    };
    let started = Instant::now();
    for r in run_suite(cases, &opts) {
        r.expect("workload verifies");
    }
    started.elapsed()
}

/// Four workloads, `jobs = 4` vs `jobs = 1`: the parallel suite must be
/// measurably faster. The margin is deliberately loose (25% on dozens
/// of sleeps) so scheduler noise cannot flake the test.
#[test]
fn jobs4_is_measurably_faster_than_jobs1_on_four_workloads() {
    let cases = sleepy_cases(&["testsnap", "testsnap_omp", "gridmini", "xsbench"]);
    let sequential = suite_wall(&cases, 1);
    let parallel = suite_wall(&cases, 4);
    assert!(
        parallel < sequential.mul_f64(0.75),
        "expected jobs=4 ({parallel:?}) to beat jobs=1 ({sequential:?}) by >= 25%"
    );
}

/// The speedup comes from honest overlap, not from skipping probes:
/// both runs reach the same verdicts (canonical decisions compared, as
/// everywhere in the determinism suite).
#[test]
fn overlapped_suite_reaches_sequential_verdicts() {
    let cases = sleepy_cases(&["testsnap_omp", "xsbench"]);
    let opts1 = DriverOptions::default();
    let opts4 = DriverOptions {
        jobs: 4,
        ..Default::default()
    };
    let seq = run_suite(&cases, &opts1);
    let par = run_suite(&cases, &opts4);
    for (s, p) in seq.iter().zip(par.iter()) {
        let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
        assert_eq!(s.decisions.canonical(), p.decisions.canonical());
        assert_eq!(s.fully_optimistic, p.fully_optimistic);
        assert_eq!(s.final_run.stdout, p.final_run.stdout);
    }
}
