/root/repo/target/release/deps/oraql_bench-70c8eda382b02b1d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/liboraql_bench-70c8eda382b02b1d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/liboraql_bench-70c8eda382b02b1d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
