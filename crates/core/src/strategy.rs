//! The two bisection strategies of the probing driver (paper §IV-B).
//!
//! *Chunked*: recursively splits the not-yet-decided tail of the
//! sequence into an earlier and a later half, adapting to the fact that
//! the number of unique queries changes as decisions change. Efficient
//! when dangerous queries cluster (which they do in practice).
//!
//! *Frequency space*: splits query indices by integer-division residue
//! (even/odd at the first level), giving sequence descriptors that are
//! independent of the sequence length. Simple, but clustered dangerous
//! queries force it to refine almost to singletons.
//!
//! Both implement the Fig. 2 deduction: when a parent range is known to
//! contain a dangerous query and one sibling proves clean, the other
//! sibling's failing test is deduced rather than run.
//!
//! # Speculative sibling probes
//!
//! Each bisection step probes a parent configuration and then — unless
//! the parent answer makes it unnecessary — one or both siblings of the
//! split. Those sibling probes do not depend on the parent's *outcome*,
//! only on its decision vector, so a parallel prober can start them
//! before the parent answer is known. The strategies express this with
//! [`Prober::probe_speculative`]: a sibling probe is launched as a
//! [`SpeculativeProbe`] handle before the blocking probe, then either
//! consumed with [`Prober::wait_probe`] or discarded with
//! [`Prober::cancel_probe`] when the parent's answer (or the Fig. 2
//! deduction) makes it moot.
//!
//! # The speculation DAG (`speculate_depth >= 2`)
//!
//! Sibling speculation only looks one probe ahead. The strategies can
//! speculate deeper: conditioned on "the parent range fails", the next
//! probes are the successively halved prefixes the recursion will
//! issue (chunked), or the first split probe of whichever residue-class
//! subtree survives (frequency space). [`Prober::hint_probe`] launches
//! those grandchild configurations as *fire-and-forget* warm-ups: their
//! verdicts land in the shared caches (or are joined in-flight) by the
//! time the blocking walk reaches them, but no strategy decision ever
//! reads a hint directly. When a parent outcome invalidates a subtree —
//! including via the Fig. 2 deduction — its hints are discarded with
//! [`Prober::cancel_hint`]. [`Prober::note_range_outcome`] feeds the
//! dangerous-fraction priors that order hint execution (likely-clean
//! subtrees first).
//!
//! # Determinism contract
//!
//! The default trait implementations make speculation a no-op: the
//! handle defers the probe and `wait_probe` evaluates it inline, at
//! exactly the sequence point where the sequential code probed. A
//! sequential prober (`--jobs 1`) therefore observes the *identical*
//! probe order the seed driver issued, and every strategy's final
//! decision sequence is a pure function of probe outcomes — parallel
//! probers that answer probes deterministically (the driver's compile +
//! VM pipeline is deterministic) produce identical decisions at any job
//! count. Hints keep that property trivially: they can only warm
//! caches, never alter the blocking probe sequence or its outcomes.

use crate::sequence::Decisions;

/// Outcome of probing one decision source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Did the compiled program verify?
    pub pass: bool,
    /// Unique ORAQL queries observed during that compilation.
    pub unique: u64,
}

/// A probe that may be evaluated concurrently with the caller.
/// Obtained from [`Prober::probe_speculative`]; must be settled by
/// exactly one of [`Prober::wait_probe`] / [`Prober::cancel_probe`].
#[derive(Debug)]
pub struct SpeculativeProbe {
    /// The decision vector the probe evaluates.
    pub decisions: Decisions,
    /// Executor ticket when the probe really runs in the background;
    /// `None` means deferred — evaluated inline on `wait_probe`.
    pub ticket: Option<u64>,
}

/// A fire-and-forget warm-up probe of the speculation DAG. Obtained
/// from [`Prober::hint_probe`]; optionally discarded early with
/// [`Prober::cancel_hint`] when the subtree it belongs to is
/// invalidated. Unlike [`SpeculativeProbe`] it is never waited on —
/// dropping the handle simply lets the hint finish and warm the caches.
#[derive(Debug)]
pub struct HintHandle(pub u64);

/// Something that can compile + test a decision source (the driver).
pub trait Prober {
    /// Compile with `d`, run, verify.
    fn probe(&mut self, d: &Decisions) -> ProbeOutcome;
    /// True once the test budget is exhausted (strategies then finish
    /// conservatively).
    fn budget_exceeded(&self) -> bool;
    /// Records a test skipped thanks to the deduction rule.
    fn note_deduced(&mut self);

    /// How many outcome levels ahead this prober wants the strategies
    /// to speculate. `0` disables speculation entirely, `1` launches
    /// only the immediate sibling of each blocking probe (the classic
    /// one-ahead flow), and `>= 2` additionally issues
    /// [`Prober::hint_probe`] warm-ups up to `depth - 1` levels down
    /// the bisection DAG.
    fn speculate_depth(&self) -> u32 {
        1
    }

    /// Starts a fire-and-forget warm-up of `d` — a configuration the
    /// strategy *might* block on one or two levels down the DAG.
    /// `start` is the first undecided query index of the hinted range
    /// (the priors cluster key). Returns `None` when the prober does
    /// not execute hints (the default), in which case nothing happens.
    fn hint_probe(&mut self, d: &Decisions, start: u64) -> Option<HintHandle> {
        let _ = (d, start);
        None
    }

    /// Abandons a hint whose subtree was invalidated by a parent
    /// outcome or the Fig. 2 deduction. The default is a no-op.
    fn cancel_hint(&mut self, h: HintHandle) {
        let _ = h;
    }

    /// Records the settled outcome of a decided range starting at query
    /// index `start`: `dangerous` means the range kept at least one
    /// pessimistic answer. Feeds the suite-global priors that rank
    /// which subtrees to speculate first. The default is a no-op.
    fn note_range_outcome(&mut self, start: u64, dangerous: bool) {
        let _ = (start, dangerous);
    }

    /// Starts evaluating `d` concurrently, if this prober can. The
    /// default defers: no work happens until [`Prober::wait_probe`],
    /// which preserves the sequential probe order exactly.
    fn probe_speculative(&mut self, d: &Decisions) -> SpeculativeProbe {
        SpeculativeProbe {
            decisions: d.clone(),
            ticket: None,
        }
    }

    /// Blocks until the speculative probe's outcome is available.
    /// Deferred handles are evaluated inline here.
    fn wait_probe(&mut self, h: SpeculativeProbe) -> ProbeOutcome {
        debug_assert!(h.ticket.is_none(), "ticketed handle without an executor");
        self.probe(&h.decisions)
    }

    /// Abandons a speculative probe; its verdict is never consumed.
    /// The default is a no-op (nothing was started).
    fn cancel_probe(&mut self, h: SpeculativeProbe) {
        let _ = h;
    }
}

/// Which strategy the driver uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Chunked (earlier/later) bisection — the default.
    #[default]
    Chunked,
    /// Frequency-space (residue class) bisection.
    FrequencySpace,
}

impl Strategy {
    /// Parses a config-file value.
    pub fn parse(s: &str) -> Result<Strategy, String> {
        match s {
            "chunked" => Ok(Strategy::Chunked),
            "frequency" | "frequency-space" => Ok(Strategy::FrequencySpace),
            other => Err(format!("unknown strategy {other:?}")),
        }
    }

    /// Runs the strategy. Precondition: the fully-optimistic probe has
    /// already failed. Returns decisions whose probe passes.
    pub fn solve(self, p: &mut dyn Prober) -> Decisions {
        match self {
            Strategy::Chunked => chunked(p),
            Strategy::FrequencySpace => frequency_space(p),
        }
    }
}

/// Chunked bisection.
pub fn chunked(p: &mut dyn Prober) -> Decisions {
    let mut prefix: Vec<bool> = Vec::new();
    loop {
        let optimistic_rest = Decisions::Explicit {
            seq: prefix.clone(),
            tail: true,
        };
        // If the optimistic probe fails we immediately need the tail
        // length under a pessimistic tail — overlap that measurement
        // with the optimistic probe.
        let tail_spec = p.probe_speculative(&Decisions::Explicit {
            seq: prefix.clone(),
            tail: false,
        });
        if p.probe(&optimistic_rest).pass {
            p.cancel_probe(tail_spec);
            p.note_range_outcome(prefix.len() as u64, false);
            return optimistic_rest;
        }
        if p.budget_exceeded() {
            // Conservative finish: everything undecided stays
            // pessimistic (always verifies).
            p.cancel_probe(tail_spec);
            return Decisions::Explicit {
                seq: prefix,
                tail: false,
            };
        }
        // Number of queries beyond the prefix when the tail is answered
        // pessimistically (always a passing configuration).
        let o = p.wait_probe(tail_spec);
        let n = o.unique.saturating_sub(prefix.len() as u64);
        let before = prefix.len();
        if n == 0 {
            // The dangerous queries only appear once earlier optimism
            // has been granted; we cannot see them under a pessimistic
            // tail. Concede one pessimistic decision to make progress.
            prefix.push(false);
            continue;
        }
        decide_range(p, &mut prefix, n, false, None);
        if prefix.len() == before {
            prefix.push(false); // forced progress (should not happen)
        }
    }
}

/// Decides (approximately) the next `h` queries after `prefix`, leaving
/// everything beyond pessimistic. `known_fail` says the all-optimistic
/// test for this range is already known to fail (deduction).
/// `prelaunched` optionally carries a speculative probe of exactly this
/// range's all-optimistic configuration, started by the caller.
fn decide_range(
    p: &mut dyn Prober,
    prefix: &mut Vec<bool>,
    h: u64,
    known_fail: bool,
    prelaunched: Option<SpeculativeProbe>,
) {
    if h == 0 {
        if let Some(s) = prelaunched {
            p.cancel_probe(s);
        }
        return;
    }
    if p.budget_exceeded() {
        // Undecided ⇒ pessimistic.
        if let Some(s) = prelaunched {
            p.cancel_probe(s);
        }
        prefix.extend(std::iter::repeat_n(false, h as usize));
        return;
    }
    let start = prefix.len() as u64;
    let mut half_spec: Option<SpeculativeProbe> = None;
    let mut fail_hints: Vec<HintHandle> = Vec::new();
    if known_fail {
        debug_assert!(prelaunched.is_none());
        p.note_deduced();
    } else {
        let mut seq = prefix.clone();
        seq.extend(std::iter::repeat_n(true, h as usize));
        let d = Decisions::Explicit {
            seq: seq.clone(),
            tail: false,
        };
        // If this range fails, the first thing the recursion probes is
        // the earlier half — launch that sibling speculatively before
        // blocking on the full range.
        if h > 1 {
            let mut half = prefix.clone();
            half.extend(std::iter::repeat_n(true, (h / 2) as usize));
            half_spec = Some(p.probe_speculative(&Decisions::Explicit {
                seq: half,
                tail: false,
            }));
            // Deeper speculation (the DAG): still conditioned on "this
            // range fails", the recursion's own earlier-half siblings
            // are the successively halved prefixes — warm them as
            // fire-and-forget hints while the parent is in flight.
            let depth = p.speculate_depth();
            if depth >= 2 && !p.budget_exceeded() {
                let mut hh = h / 2;
                for _ in 1..depth {
                    hh /= 2;
                    if hh == 0 {
                        break;
                    }
                    let mut g = prefix.clone();
                    g.extend(std::iter::repeat_n(true, hh as usize));
                    if let Some(hint) = p.hint_probe(
                        &Decisions::Explicit {
                            seq: g,
                            tail: false,
                        },
                        start,
                    ) {
                        fail_hints.push(hint);
                    }
                }
            }
        }
        let outcome = match prelaunched {
            Some(s) => {
                debug_assert_eq!(s.decisions, d);
                p.wait_probe(s)
            }
            None => p.probe(&d),
        };
        if outcome.pass {
            // The fail-conditioned subtree is invalidated wholesale.
            for hint in fail_hints {
                p.cancel_hint(hint);
            }
            if let Some(s) = half_spec {
                p.cancel_probe(s);
            }
            *prefix = seq;
            p.note_range_outcome(start, false);
            return;
        }
        // Range fails: the hints stand — the recursion's blocking
        // probes for the same configurations will find their verdicts
        // cached or join them in flight.
    }
    if h == 1 {
        debug_assert!(half_spec.is_none());
        prefix.push(false);
        p.note_range_outcome(start, true);
        return;
    }
    let h1 = h / 2;
    let before = prefix.len();
    decide_range(p, prefix, h1, false, half_spec);
    let consumed = (prefix.len() - before) as u64;
    // The query space shifts as decisions change; re-measure how much
    // of the original range remains (the paper's "the bisection
    // strategy must adapt accordingly").
    let h2 = h.saturating_sub(consumed);
    // Fig. 2 deduction: a clean first half means the danger is in the
    // second half — skip its all-optimistic test.
    let first_half_clean = prefix[before..].iter().all(|&b| b);
    decide_range(p, prefix, h2, first_half_clean, None);
}

/// Frequency-space bisection.
pub fn frequency_space(p: &mut dyn Prober) -> Decisions {
    // Invariant maintained throughout: answering all classes in
    // `finalized ∪ work` pessimistically passes.
    let mut finalized: Vec<(u64, u64)> = Vec::new();
    let mut work: Vec<(u64, u64)> = vec![(1, 0)];
    let mut last_passing = Decisions::PessimisticClasses(vec![(1, 0)]);

    while let Some((m, r)) = work.pop() {
        let ctx = |extra: &[(u64, u64)], finalized: &[(u64, u64)], work: &[(u64, u64)]| {
            let mut c = finalized.to_vec();
            c.extend_from_slice(work);
            c.extend_from_slice(extra);
            Decisions::PessimisticClasses(c)
        };
        if p.budget_exceeded() {
            finalized.push((m, r));
            continue;
        }
        // The split probes depend only on the measurement probe's
        // decision vectors, not its outcome — launch both siblings
        // speculatively before blocking on the measurement.
        let c1 = (2 * m, r);
        let c2 = (2 * m, r + m);
        let spec1 = p.probe_speculative(&ctx(&[c1], &finalized, &work));
        let spec2 = p.probe_speculative(&ctx(&[c2], &finalized, &work));
        // Deeper speculation (the DAG): if exactly one sibling survives
        // this round, the next iteration pops it with `finalized`/`work`
        // unchanged, so its first split probe is computable now — warm
        // one grandchild per possible surviving subtree.
        let (mut hint1, mut hint2) = (None, None);
        if p.speculate_depth() >= 2 {
            hint1 = p.hint_probe(&ctx(&[(4 * m, r)], &finalized, &work), r);
            hint2 = p.hint_probe(&ctx(&[(4 * m, r + m)], &finalized, &work), r + m);
        }
        // Measure the current query count with this class pessimistic.
        let o = p.probe(&ctx(&[(m, r)], &finalized, &work));
        if o.pass {
            last_passing = ctx(&[(m, r)], &finalized, &work);
        }
        let n = o.unique;
        let class_size = if m == 0 {
            0
        } else {
            n.saturating_sub(r).div_ceil(m)
        };
        if class_size <= 1 {
            p.cancel_probe(spec1);
            p.cancel_probe(spec2);
            if let Some(h) = hint1.take() {
                p.cancel_hint(h);
            }
            if let Some(h) = hint2.take() {
                p.cancel_hint(h);
            }
            finalized.push((m, r));
            p.note_range_outcome(r, true);
            continue;
        }
        let o1 = p.wait_probe(spec1);
        if o1.pass {
            last_passing = ctx(&[c1], &finalized, &work);
            // All dangers of (m, r) live in c1; c2 is clean. The
            // c2-only test would fail — deduced, not run: cancelling
            // the speculative sibling *is* the Fig. 2 deduction here,
            // and the whole c2 subtree (its grandchild hint included)
            // is invalidated with it.
            p.cancel_probe(spec2);
            if let Some(h) = hint2.take() {
                p.cancel_hint(h);
            }
            p.note_deduced();
            p.note_range_outcome(r + m, false);
            work.push(c1);
            continue;
        }
        let o2 = p.wait_probe(spec2);
        if o2.pass {
            last_passing = ctx(&[c2], &finalized, &work);
            // Dangers all live in c2: the c1 subtree is dropped, and
            // its grandchild hint with it.
            if let Some(h) = hint1.take() {
                p.cancel_hint(h);
            }
            p.note_range_outcome(r, false);
            work.push(c2);
        } else {
            // Both halves dangerous: the next iterations see a changed
            // work set, so neither grandchild hint matches a future
            // probe — cancel both rather than let them run stale.
            if let Some(h) = hint1.take() {
                p.cancel_hint(h);
            }
            if let Some(h) = hint2.take() {
                p.cancel_hint(h);
            }
            work.push(c1);
            work.push(c2);
        }
    }

    let result = Decisions::PessimisticClasses(finalized);
    if p.probe(&result).pass {
        result
    } else {
        // Adaptivity can invalidate the split bookkeeping; fall back to
        // the last configuration that verified.
        last_passing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic prober: a fixed set of dangerous indices; a probe
    /// passes iff every dangerous index is answered pessimistically.
    /// The query count is fixed (no adaptivity) — adaptivity is covered
    /// by the driver integration tests.
    struct Synthetic {
        dangerous: Vec<u64>,
        n: u64,
        tests: u64,
        deduced: u64,
        budget: u64,
    }

    impl Prober for Synthetic {
        fn probe(&mut self, d: &Decisions) -> ProbeOutcome {
            self.tests += 1;
            let pass = self.dangerous.iter().all(|&i| !d.decide(i));
            ProbeOutcome {
                pass,
                unique: self.n,
            }
        }
        fn budget_exceeded(&self) -> bool {
            self.tests >= self.budget
        }
        fn note_deduced(&mut self) {
            self.deduced += 1;
        }
    }

    fn synth(dangerous: Vec<u64>, n: u64) -> Synthetic {
        Synthetic {
            dangerous,
            n,
            tests: 0,
            deduced: 0,
            budget: 100_000,
        }
    }

    fn check_result(s: &Synthetic, d: &Decisions) {
        // All dangerous indices pessimistic.
        for &i in &s.dangerous {
            assert!(!d.decide(i), "index {i} must be pessimistic ({d:?})");
        }
    }

    #[test]
    fn chunked_finds_single_dangerous_query() {
        let mut s = synth(vec![37], 100);
        let d = chunked(&mut s);
        check_result(&s, &d);
        // Locally maximal: everything else optimistic.
        let pess = d.pessimistic_count(100);
        assert_eq!(pess, 1, "{d:?}");
        // Far fewer tests than the 100 a per-query scan would need.
        assert!(s.tests < 30, "tests = {}", s.tests);
    }

    #[test]
    fn chunked_handles_clustered_dangers() {
        let mut s = synth(vec![40, 41, 42, 43], 128);
        let d = chunked(&mut s);
        check_result(&s, &d);
        assert_eq!(d.pessimistic_count(128), 4);
        assert!(s.deduced > 0, "deduction should trigger");
    }

    #[test]
    fn chunked_with_no_dangers_is_two_tests() {
        let mut s = synth(vec![], 1000);
        let d = chunked(&mut s);
        assert_eq!(d.pessimistic_count(1000), 0);
        assert_eq!(s.tests, 1);
    }

    #[test]
    fn chunked_all_dangerous() {
        let mut s = synth((0..16).collect(), 16);
        let d = chunked(&mut s);
        check_result(&s, &d);
        assert_eq!(d.pessimistic_count(16), 16);
    }

    #[test]
    fn frequency_space_finds_scattered_dangers() {
        let mut s = synth(vec![5, 64], 128);
        let d = frequency_space(&mut s);
        check_result(&s, &d);
        // Locally maximal-ish: the vast majority stays optimistic.
        assert!(d.pessimistic_count(128) <= 8, "{d:?}");
    }

    #[test]
    fn frequency_space_clustered_needs_more_tests_than_chunked() {
        let cluster: Vec<u64> = (40..48).collect();
        let mut sc = synth(cluster.clone(), 256);
        let dc = chunked(&mut sc);
        check_result(&sc, &dc);
        let mut sf = synth(cluster, 256);
        let df = frequency_space(&mut sf);
        check_result(&sf, &df);
        // The paper's observation: clustering favours chunked probing.
        assert!(
            sf.tests > sc.tests,
            "frequency {} <= chunked {}",
            sf.tests,
            sc.tests
        );
    }

    #[test]
    fn budget_exhaustion_is_safe() {
        let mut s = synth(vec![3, 77, 200, 512], 1024);
        s.budget = 8;
        let d = chunked(&mut s);
        // Whatever was decided, the result must verify.
        assert!(s.dangerous.iter().all(|&i| !d.decide(i)), "{d:?}");
    }

    /// Synthetic prober with the speculation DAG enabled: it records
    /// hint launches and cancellations without executing anything —
    /// hints are pure warm-ups, so a prober that ignores them must
    /// still reach identical decisions.
    struct SpecSynthetic {
        inner: Synthetic,
        depth: u32,
        next_hint: u64,
        live: std::collections::HashSet<u64>,
        launched: u64,
        cancelled: u64,
        hinted: Vec<Decisions>,
        notes: Vec<(u64, bool)>,
    }

    impl SpecSynthetic {
        fn new(dangerous: Vec<u64>, n: u64, depth: u32) -> Self {
            SpecSynthetic {
                inner: synth(dangerous, n),
                depth,
                next_hint: 0,
                live: Default::default(),
                launched: 0,
                cancelled: 0,
                hinted: Vec::new(),
                notes: Vec::new(),
            }
        }
    }

    impl Prober for SpecSynthetic {
        fn probe(&mut self, d: &Decisions) -> ProbeOutcome {
            self.inner.probe(d)
        }
        fn budget_exceeded(&self) -> bool {
            self.inner.budget_exceeded()
        }
        fn note_deduced(&mut self) {
            self.inner.note_deduced()
        }
        fn speculate_depth(&self) -> u32 {
            self.depth
        }
        fn hint_probe(&mut self, d: &Decisions, _start: u64) -> Option<HintHandle> {
            let id = self.next_hint;
            self.next_hint += 1;
            self.live.insert(id);
            self.launched += 1;
            self.hinted.push(d.clone());
            Some(HintHandle(id))
        }
        fn cancel_hint(&mut self, h: HintHandle) {
            assert!(self.live.remove(&h.0), "hint cancelled twice");
            self.cancelled += 1;
        }
        fn note_range_outcome(&mut self, start: u64, dangerous: bool) {
            self.notes.push((start, dangerous));
        }
    }

    #[test]
    fn chunked_dag_hints_do_not_perturb_decisions() {
        let mut plain = synth(vec![37, 64, 65], 128);
        let d_plain = chunked(&mut plain);
        let mut dag = SpecSynthetic::new(vec![37, 64, 65], 128, 3);
        let d_dag = chunked(&mut dag);
        // Identical blocking probe sequence ⇒ identical result and
        // identical probe count — hints ride alongside, never within.
        assert_eq!(d_plain, d_dag);
        assert_eq!(plain.tests, dag.inner.tests);
        assert!(dag.launched > 0, "depth 3 must launch hints");
        assert!(dag.cancelled <= dag.launched);
        // Every hint is an explicit pessimistic-tail prefix probe.
        for h in &dag.hinted {
            assert!(
                matches!(h, Decisions::Explicit { tail: false, .. }),
                "{h:?}"
            );
        }
        // Range outcomes were reported for the priors.
        assert!(dag.notes.iter().any(|&(_, dangerous)| dangerous));
        assert!(dag.notes.iter().any(|&(_, dangerous)| !dangerous));
    }

    #[test]
    fn frequency_dag_hints_do_not_perturb_decisions() {
        let mut plain = synth(vec![5, 64], 128);
        let d_plain = frequency_space(&mut plain);
        let mut dag = SpecSynthetic::new(vec![5, 64], 128, 2);
        let d_dag = frequency_space(&mut dag);
        assert_eq!(d_plain, d_dag);
        assert_eq!(plain.tests, dag.inner.tests);
        assert!(dag.launched > 0, "depth 2 must launch hints");
        assert!(dag.cancelled <= dag.launched);
    }

    #[test]
    fn depth_below_two_launches_no_hints() {
        for depth in [0, 1] {
            let mut dag = SpecSynthetic::new(vec![37], 100, depth);
            let d = chunked(&mut dag);
            check_result(&dag.inner, &d);
            assert_eq!(dag.launched, 0, "depth {depth} must not hint");
        }
    }

    #[test]
    fn strategy_parse() {
        assert_eq!(Strategy::parse("chunked").unwrap(), Strategy::Chunked);
        assert_eq!(
            Strategy::parse("frequency").unwrap(),
            Strategy::FrequencySpace
        );
        assert!(Strategy::parse("?").is_err());
    }
}
