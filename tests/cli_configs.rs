//! The shipped configuration files in `configs/` must parse and drive
//! the workflow they describe.

use oraql_suite::oraql::config::Config;
use oraql_suite::oraql::{Driver, DriverOptions, Strategy};

fn repo_path(rel: &str) -> String {
    format!("{}/{}", env!("CARGO_MANIFEST_DIR"), rel)
}

#[test]
fn shipped_configs_parse() {
    for (file, benchmark, strategy) in [
        (
            "configs/testsnap_omp.conf",
            "testsnap_omp",
            Strategy::Chunked,
        ),
        (
            "configs/gridmini_device.conf",
            "gridmini",
            Strategy::Chunked,
        ),
        (
            "configs/lulesh_mpi_frequency.conf",
            "lulesh_mpi",
            Strategy::FrequencySpace,
        ),
        ("configs/amg_csr.conf", "amg_csr", Strategy::Chunked),
        (
            "configs/sw4lite_halo.conf",
            "sw4lite_halo",
            Strategy::Chunked,
        ),
    ] {
        let cfg = Config::load(&repo_path(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(cfg.benchmark, benchmark);
        assert_eq!(cfg.strategy, strategy);
        assert!(!cfg.ignore.is_empty());
        // Every named benchmark exists in the registry.
        assert!(
            oraql_workloads::find_case(&cfg.benchmark).is_some(),
            "{file} names unknown benchmark {}",
            cfg.benchmark
        );
    }
}

#[test]
fn gridmini_config_drives_device_scoped_probe() {
    let cfg = Config::load(&repo_path("configs/gridmini_device.conf")).unwrap();
    let mut case = oraql_workloads::find_case(&cfg.benchmark).unwrap();
    case.scope = cfg.scope.clone();
    case.ignore_patterns = cfg.ignore.clone();
    let r = Driver::run(
        &case,
        DriverOptions {
            strategy: cfg.strategy,
            max_tests: cfg.max_tests,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r.fully_optimistic);
    // All answered queries live in device functions (GridMini's host
    // side is plain enough that the conservative chain resolves it
    // before ORAQL is ever consulted).
    for q in &r.queries {
        assert_eq!(
            r.final_module.func(q.func).target,
            oraql_suite::ir::Target::Device,
            "query answered outside the device scope"
        );
    }
    assert!(r.oraql.unique() > 0);
}

#[test]
fn frequency_config_still_pins_lulesh_hazards() {
    let cfg = Config::load(&repo_path("configs/lulesh_mpi_frequency.conf")).unwrap();
    let mut case = oraql_workloads::find_case(&cfg.benchmark).unwrap();
    case.scope = cfg.scope.clone();
    case.ignore_patterns = cfg.ignore.clone();
    let r = Driver::run(
        &case,
        DriverOptions {
            strategy: cfg.strategy,
            max_tests: cfg.max_tests,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!r.fully_optimistic);
    assert!(r.oraql.unique_pessimistic >= 16);
    // Frequency space is locally maximal but coarser: it may pin more
    // than the chunked strategy; it must still leave most optimistic.
    assert!(r.oraql.unique_optimistic > r.oraql.unique_pessimistic);
}

/// The two motif-model proxies behind `oraql-gen`: each plants exactly
/// one genuinely-aliasing pair (punned workspace view; zero-copy halo
/// buffer), which the driver must pin while keeping the rest optimistic.
#[test]
fn motif_proxy_configs_pin_exactly_the_planted_hazard() {
    for file in ["configs/amg_csr.conf", "configs/sw4lite_halo.conf"] {
        let cfg = Config::load(&repo_path(file)).unwrap();
        let mut case = oraql_workloads::find_case(&cfg.benchmark).unwrap();
        case.scope = cfg.scope.clone();
        case.ignore_patterns = cfg.ignore.clone();
        let r = Driver::run(
            &case,
            DriverOptions {
                strategy: cfg.strategy,
                max_tests: cfg.max_tests,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!r.fully_optimistic, "{file}");
        assert_eq!(r.oraql.unique_pessimistic, 1, "{file}");
        assert!(r.oraql.unique_optimistic >= 4, "{file}");
    }
}
