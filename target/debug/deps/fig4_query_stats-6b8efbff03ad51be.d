/root/repo/target/debug/deps/fig4_query_stats-6b8efbff03ad51be.d: crates/bench/benches/fig4_query_stats.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_query_stats-6b8efbff03ad51be.rmeta: crates/bench/benches/fig4_query_stats.rs Cargo.toml

crates/bench/benches/fig4_query_stats.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
