/root/repo/target/debug/deps/oraql_suite-cff257f1fc3e1cb6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liboraql_suite-cff257f1fc3e1cb6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
