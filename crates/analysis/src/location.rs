//! Memory locations, location sizes and alias results — the vocabulary
//! of an alias query.

use oraql_ir::inst::{Inst, InstId};
use oraql_ir::meta::{ScopeId, TbaaTag};
use oraql_ir::module::Function;
use oraql_ir::value::Value;

/// How much memory, starting at the pointer, a query is about.
///
/// Mirrors LLVM's `LocationSize`: most queries are about a precise access
/// width; queries issued for whole objects or imprecise accesses use
/// `BeforeOrAfterPointer` ("any offset around the pointer").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LocationSize {
    /// Exactly `n` bytes starting at the pointer.
    Precise(u64),
    /// Unknown extent on either side of the pointer.
    BeforeOrAfterPointer,
}

impl LocationSize {
    /// The byte count if precise.
    pub fn bytes(self) -> Option<u64> {
        match self {
            LocationSize::Precise(n) => Some(n),
            LocationSize::BeforeOrAfterPointer => None,
        }
    }
}

impl std::fmt::Display for LocationSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocationSize::Precise(n) => write!(f, "LocationSize::precise({n})"),
            LocationSize::BeforeOrAfterPointer => write!(f, "LocationSize::beforeOrAfterPointer"),
        }
    }
}

/// Result of an alias query (paper §III). `MayAlias` is the pessimistic
/// "don't know"; `NoAlias` is the most optimization-enabling answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AliasResult {
    /// The locations are guaranteed disjoint.
    NoAlias,
    /// Unknown (the conservative fallback).
    MayAlias,
    /// The locations overlap but are not identical.
    PartialAlias,
    /// The locations start at the same address.
    MustAlias,
}

impl AliasResult {
    /// True for `NoAlias`/`MustAlias`/`PartialAlias`, i.e. answers that
    /// terminate the analysis chain.
    pub fn is_definite(self) -> bool {
        !matches!(self, AliasResult::MayAlias)
    }
}

impl std::fmt::Display for AliasResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AliasResult::NoAlias => "NoAlias",
            AliasResult::MayAlias => "MayAlias",
            AliasResult::PartialAlias => "PartialAlias",
            AliasResult::MustAlias => "MustAlias",
        };
        f.write_str(s)
    }
}

/// A memory location: a pointer SSA value, an extent, and the access
/// metadata of the instruction the location was taken from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoryLocation {
    /// The pointer value.
    pub ptr: Value,
    /// The extent of the access.
    pub size: LocationSize,
    /// TBAA tag of the originating access, if any.
    pub tbaa: Option<TbaaTag>,
    /// Alias scopes the originating access belongs to.
    pub scopes: Vec<ScopeId>,
    /// Scopes the originating access is declared not to alias.
    pub noalias: Vec<ScopeId>,
}

impl MemoryLocation {
    /// A bare location with no metadata.
    pub fn new(ptr: Value, size: LocationSize) -> Self {
        MemoryLocation {
            ptr,
            size,
            tbaa: None,
            scopes: Vec::new(),
            noalias: Vec::new(),
        }
    }

    /// Precise location of `bytes` bytes at `ptr`.
    pub fn precise(ptr: Value, bytes: u64) -> Self {
        Self::new(ptr, LocationSize::Precise(bytes))
    }

    /// Whole-object location at `ptr` (unknown extent).
    pub fn whole(ptr: Value) -> Self {
        Self::new(ptr, LocationSize::BeforeOrAfterPointer)
    }

    /// The location accessed by a load or store instruction, carrying the
    /// instruction's access metadata. Returns `None` for instructions
    /// that are not a single scalar memory access.
    pub fn of_access(f: &Function, id: InstId) -> Option<MemoryLocation> {
        match f.inst(id) {
            Inst::Load { ptr, ty, meta } => Some(MemoryLocation {
                ptr: *ptr,
                size: LocationSize::Precise(ty.size()),
                tbaa: meta.tbaa,
                scopes: meta.scopes.clone(),
                noalias: meta.noalias.clone(),
            }),
            Inst::Store { ptr, ty, meta, .. } => Some(MemoryLocation {
                ptr: *ptr,
                size: LocationSize::Precise(ty.size()),
                tbaa: meta.tbaa,
                scopes: meta.scopes.clone(),
                noalias: meta.noalias.clone(),
            }),
            _ => None,
        }
    }

    /// The source (read) location of a memcpy.
    pub fn memcpy_source(f: &Function, id: InstId) -> Option<MemoryLocation> {
        match f.inst(id) {
            Inst::Memcpy {
                src, bytes, meta, ..
            } => Some(MemoryLocation {
                ptr: *src,
                size: match bytes.as_int() {
                    Some(n) if n >= 0 => LocationSize::Precise(n as u64),
                    _ => LocationSize::BeforeOrAfterPointer,
                },
                tbaa: meta.tbaa,
                scopes: meta.scopes.clone(),
                noalias: meta.noalias.clone(),
            }),
            _ => None,
        }
    }

    /// The destination (written) location of a memcpy.
    pub fn memcpy_dest(f: &Function, id: InstId) -> Option<MemoryLocation> {
        match f.inst(id) {
            Inst::Memcpy {
                dst, bytes, meta, ..
            } => Some(MemoryLocation {
                ptr: *dst,
                size: match bytes.as_int() {
                    Some(n) if n >= 0 => LocationSize::Precise(n as u64),
                    _ => LocationSize::BeforeOrAfterPointer,
                },
                tbaa: meta.tbaa,
                scopes: meta.scopes.clone(),
                noalias: meta.noalias.clone(),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Module, Ty};

    #[test]
    fn location_of_load_and_store() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        let p = b.arg(0);
        let v = b.load(Ty::F64, p);
        b.store(Ty::I32, v, p);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let load = f.blocks[0].insts[0];
        let store = f.blocks[0].insts[1];
        let la = MemoryLocation::of_access(f, load).unwrap();
        let lb = MemoryLocation::of_access(f, store).unwrap();
        assert_eq!(la.size, LocationSize::Precise(8));
        assert_eq!(lb.size, LocationSize::Precise(4));
        assert_eq!(la.ptr, lb.ptr);
        // Terminator is not an access.
        let ret = f.blocks[0].insts[2];
        assert!(MemoryLocation::of_access(f, ret).is_none());
    }

    #[test]
    fn memcpy_locations() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr, Ty::Ptr], None);
        let d = b.arg(0);
        let s = b.arg(1);
        b.memcpy(d, s, oraql_ir::Value::ConstInt(32));
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let mc = f.blocks[0].insts[0];
        assert_eq!(
            MemoryLocation::memcpy_dest(f, mc).unwrap().size,
            LocationSize::Precise(32)
        );
        assert_eq!(MemoryLocation::memcpy_source(f, mc).unwrap().ptr, s);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            LocationSize::Precise(8).to_string(),
            "LocationSize::precise(8)"
        );
        assert_eq!(
            LocationSize::BeforeOrAfterPointer.to_string(),
            "LocationSize::beforeOrAfterPointer"
        );
        assert_eq!(AliasResult::NoAlias.to_string(), "NoAlias");
    }

    #[test]
    fn definiteness() {
        assert!(AliasResult::NoAlias.is_definite());
        assert!(AliasResult::MustAlias.is_definite());
        assert!(!AliasResult::MayAlias.is_definite());
    }
}
