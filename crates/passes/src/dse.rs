//! Dead-store elimination: removes stores overwritten before any read
//! (per block) and stores into non-escaping locals that are never read
//! anywhere in the function.

use crate::manager::{Pass, PassCx};
use oraql_analysis::location::{AliasResult, LocationSize, MemoryLocation};
use oraql_analysis::pointer::{decompose, PtrBase};
use oraql_ir::inst::{Inst, InstId};
use oraql_ir::module::{FunctionId, Module};

/// The pass.
pub struct Dse;

impl Pass for Dse {
    fn name(&self) -> &'static str {
        "DSE"
    }

    fn run(&mut self, m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) {
        let mut deleted = 0u64;
        deleted += overwritten_in_block(m, fid, cx);
        deleted += never_read_locals(m, fid, cx);
        cx.stat("DSE", "stores deleted", deleted);
    }
}

/// A store followed (in its block) by a complete overwrite with no
/// intervening read is dead.
fn overwritten_in_block(m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) -> u64 {
    let mut deleted = 0u64;
    let nblocks = m.func(fid).blocks.len();
    for bi in 0..nblocks {
        let ids: Vec<InstId> = m.func(fid).blocks[bi].insts.clone();
        'stores: for (pos, &id) in ids.iter().enumerate() {
            if !matches!(m.func(fid).inst(id), Inst::Store { .. }) {
                continue;
            }
            let loc = MemoryLocation::of_access(m.func(fid), id).expect("store loc");
            for &later in &ids[pos + 1..] {
                if matches!(m.func(fid).inst(later), Inst::Removed) {
                    continue;
                }
                if cx.aa.may_read(m, fid, later, &loc) {
                    continue 'stores; // value observed: live
                }
                if let Inst::Store { ty: lty, .. } = m.func(fid).inst(later) {
                    let lsize = lty.size();
                    let lloc = MemoryLocation::of_access(m.func(fid), later).expect("loc");
                    let covers = cx.aa.alias(m, fid, &lloc, &loc) == AliasResult::MustAlias
                        && match loc.size {
                            LocationSize::Precise(s) => lsize >= s,
                            LocationSize::BeforeOrAfterPointer => false,
                        };
                    if covers {
                        m.func_mut(fid).remove_inst(id);
                        deleted += 1;
                        continue 'stores;
                    }
                }
            }
        }
    }
    deleted
}

/// A store whose underlying object is an alloca (function-local
/// lifetime: nothing can observe it after return) and whose stored bytes
/// are never read by any instruction in the function is dead — the
/// whole-function generalization LLVM gets from MemorySSA. The alloca's
/// address may have escaped *within* the function: reads through escaped
/// copies show up as loads of unknown provenance (or calls), which the
/// alias queries below account for conservatively.
fn never_read_locals(m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) -> u64 {
    let mut dead: Vec<InstId> = Vec::new();
    let stores: Vec<InstId> = {
        let f = m.func(fid);
        f.live_insts()
            .filter(|&id| matches!(f.inst(id), Inst::Store { .. }))
            .collect()
    };
    'stores: for id in stores {
        {
            let f = m.func(fid);
            let Inst::Store { ptr, .. } = f.inst(id) else {
                continue;
            };
            match decompose(f, *ptr).base {
                PtrBase::Alloca(_) => {}
                _ => continue 'stores,
            }
        }
        let loc = MemoryLocation::of_access(m.func(fid), id).expect("store loc");
        let readers: Vec<InstId> = {
            let f = m.func(fid);
            f.live_insts()
                .filter(|&r| f.inst(r).reads_memory())
                .collect()
        };
        for r in readers {
            if cx.aa.may_read(m, fid, r, &loc) {
                continue 'stores;
            }
        }
        dead.push(id);
    }
    let n = dead.len() as u64;
    let f = m.func_mut(fid);
    for id in dead {
        f.remove_inst(id);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;
    use oraql_analysis::basic::BasicAA;
    use oraql_analysis::AAManager;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::value::Value;
    use oraql_ir::Ty;
    use oraql_vm::Interpreter;

    fn run_dse(m: &mut Module) -> Stats {
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let mut stats = Stats::new();
        for fi in 0..m.funcs.len() {
            let mut cx = PassCx {
                aa: &mut aa,
                stats: &mut stats,
            };
            Dse.run(m, FunctionId(fi as u32), &mut cx);
        }
        oraql_ir::verify::assert_valid(m);
        stats
    }

    #[test]
    fn overwritten_store_deleted() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 8, vec![], false);
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.store(Ty::I64, Value::ConstInt(1), Value::Global(g)); // dead
        b.store(Ty::I64, Value::ConstInt(2), Value::Global(g));
        let l = b.load(Ty::I64, Value::Global(g));
        b.print("{}", vec![l]);
        b.ret(None);
        b.finish();
        let stats = run_dse(&mut m);
        assert_eq!(stats.get("DSE", "stores deleted"), 1);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "2\n");
        assert_eq!(out.stats.stores, 1);
    }

    #[test]
    fn read_between_keeps_store() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 8, vec![], false);
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.store(Ty::I64, Value::ConstInt(1), Value::Global(g));
        let l = b.load(Ty::I64, Value::Global(g)); // reads the 1
        b.store(Ty::I64, Value::ConstInt(2), Value::Global(g));
        b.print("{}", vec![l]);
        b.ret(None);
        b.finish();
        let stats = run_dse(&mut m);
        assert_eq!(stats.get("DSE", "stores deleted"), 0);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "1\n");
    }

    #[test]
    fn scratch_stores_into_never_read_local_deleted() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let scratch = b.alloca(80, "scratch");
        let live = b.alloca(8, "live");
        b.store(Ty::I64, Value::ConstInt(42), live);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(10), |b, i| {
            let a = b.gep_scaled(scratch, i, 8, 0);
            b.store(Ty::I64, i, a); // never read anywhere
        });
        let l = b.load(Ty::I64, live);
        b.print("{}", vec![l]);
        b.ret(None);
        b.finish();
        let stats = run_dse(&mut m);
        assert_eq!(stats.get("DSE", "stores deleted"), 1); // the loop store
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "42\n");
    }

    #[test]
    fn may_aliasing_read_keeps_scratch_store() {
        // The scratch pointer escapes through a call: cannot prove dead.
        let mut m = Module::new("t");
        let sink = {
            let mut b = FunctionBuilder::new(&mut m, "sink", vec![Ty::Ptr], None);
            let l = b.load(Ty::I64, b.arg(0));
            b.print("{}", vec![l]);
            b.ret(None);
            b.finish()
        };
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let scratch = b.alloca(8, "scratch");
        b.store(Ty::I64, Value::ConstInt(5), scratch);
        b.call(sink, vec![scratch], None);
        b.ret(None);
        b.finish();
        let stats = run_dse(&mut m);
        assert_eq!(stats.get("DSE", "stores deleted"), 0);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "5\n");
    }

    #[test]
    fn partial_overwrite_is_not_dead() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 8, vec![], false);
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.store(Ty::I64, Value::ConstInt(-1), Value::Global(g));
        // Only 4 of the 8 bytes are overwritten.
        b.store(Ty::I32, Value::ConstInt(0), Value::Global(g));
        let l = b.load(Ty::I64, Value::Global(g));
        b.print("{}", vec![l]);
        b.ret(None);
        b.finish();
        let stats = run_dse(&mut m);
        assert_eq!(stats.get("DSE", "stores deleted"), 0);
    }
}
