/root/repo/target/debug/deps/ir_golden-53e4afb0668bc6d5.d: tests/ir_golden.rs Cargo.toml

/root/repo/target/debug/deps/libir_golden-53e4afb0668bc6d5.rmeta: tests/ir_golden.rs Cargo.toml

tests/ir_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
