/root/repo/target/debug/deps/fig2_probing-40f68ebbfb4bb612.d: crates/bench/benches/fig2_probing.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_probing-40f68ebbfb4bb612.rmeta: crates/bench/benches/fig2_probing.rs Cargo.toml

crates/bench/benches/fig2_probing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
