/root/repo/target/release/deps/oraql-e8e5288d722b877c.d: crates/core/src/lib.rs crates/core/src/compile.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/pass.rs crates/core/src/pool.rs crates/core/src/report.rs crates/core/src/sequence.rs crates/core/src/strategy.rs crates/core/src/textpat.rs crates/core/src/trace.rs crates/core/src/verify.rs

/root/repo/target/release/deps/liboraql-e8e5288d722b877c.rlib: crates/core/src/lib.rs crates/core/src/compile.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/pass.rs crates/core/src/pool.rs crates/core/src/report.rs crates/core/src/sequence.rs crates/core/src/strategy.rs crates/core/src/textpat.rs crates/core/src/trace.rs crates/core/src/verify.rs

/root/repo/target/release/deps/liboraql-e8e5288d722b877c.rmeta: crates/core/src/lib.rs crates/core/src/compile.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/pass.rs crates/core/src/pool.rs crates/core/src/report.rs crates/core/src/sequence.rs crates/core/src/strategy.rs crates/core/src/textpat.rs crates/core/src/trace.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/compile.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/pass.rs:
crates/core/src/pool.rs:
crates/core/src/report.rs:
crates/core/src/sequence.rs:
crates/core/src/strategy.rs:
crates/core/src/textpat.rs:
crates/core/src/trace.rs:
crates/core/src/verify.rs:
