/root/repo/target/debug/deps/parallel_speedup-e2aadfd808f2bc8a.d: tests/parallel_speedup.rs

/root/repo/target/debug/deps/parallel_speedup-e2aadfd808f2bc8a: tests/parallel_speedup.rs

tests/parallel_speedup.rs:
