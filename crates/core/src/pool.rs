//! Bounded worker pool for parallel probing (std-only concurrency).
//!
//! The probing driver (paper §IV-B) spends almost all of its time in
//! compile-and-run probe cycles that are independent of each other:
//! sibling probes inside one bisection step, and probes of different
//! [`crate::driver::TestCase`]s in a suite. [`WorkerPool`] is the shared
//! execution substrate for both — a fixed set of `std::thread` workers
//! draining a single job queue, so a `--jobs N` budget bounds the total
//! probe concurrency of a whole suite run no matter how many drivers
//! feed it.
//!
//! # Concurrency contract
//!
//! * Jobs are opaque `FnOnce() + Send` closures; they must not block on
//!   other pool jobs (probe jobs never do — each one is a self-contained
//!   compile + execute + verify cycle), otherwise the bounded pool can
//!   deadlock.
//! * Submission order is preserved per queue, but completion order is
//!   unspecified; consumers synchronize through the channel they pass
//!   into their job (see `Driver::probe_speculative`).
//! * [`CancelToken`] is advisory: a job observes it *before* starting
//!   expensive work. A job already past that check runs to completion;
//!   cancellation then merely means nobody consumes its result (the
//!   shared verdict cache still keeps the work from being wasted).
//! * Dropping the pool closes the queue and joins every worker, so all
//!   borrowed-free (`'static`) state captured by pending jobs is
//!   released deterministically.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{
    atomic::{AtomicBool, Ordering},
    Arc, Mutex,
};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Advisory cancellation flag shared between a submitter and a queued
/// job. See the module docs for the exact semantics.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Requests cancellation; queued-but-unstarted jobs will be skipped.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A fixed-size pool of worker threads draining one job queue.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `jobs` worker threads (at least one).
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..jobs)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("oraql-probe-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job. Panics if called after the pool was shut down
    /// (impossible through the public API — shutdown happens in `Drop`).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("pool workers alive");
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the receiver lock only while dequeuing, never while
        // running a job.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // queue closed: pool is shutting down
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_jobs_bounded() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let hits = Arc::new(AtomicU64::new(0));
        let (tx, rx) = channel();
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            let tx = tx.clone();
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            });
        }
        for _ in 0..64 {
            rx.recv().unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn cancelled_jobs_are_skipped() {
        let pool = WorkerPool::new(1);
        let token = CancelToken::default();
        token.cancel();
        let ran = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel();
        let t = token.clone();
        let r = Arc::clone(&ran);
        pool.submit(move || {
            if !t.is_cancelled() {
                r.store(true, Ordering::SeqCst);
            }
            let _ = tx.send(());
        });
        rx.recv().unwrap();
        assert!(!ran.load(Ordering::SeqCst));
    }

    #[test]
    fn drop_joins_workers() {
        let hits = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..8 {
                let hits = Arc::clone(&hits);
                pool.submit(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop waits for the queue to drain
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_requested_workers_still_works() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = channel();
        pool.submit(move || {
            let _ = tx.send(7u8);
        });
        assert_eq!(rx.recv().unwrap(), 7);
    }
}
