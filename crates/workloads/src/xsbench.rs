//! XSBench — proxy for the OpenMC Monte Carlo neutron transport
//! macroscopic cross-section lookup kernel.
//!
//! Three configurations (paper §V-B): sequential C, OpenMP, and
//! CUDA/Thrust. All three share the `Simulation` file's `pick_mat`
//! function, whose constant-size `dist[12]` array is responsible for
//! the (identical) eleven pessimistic queries in every configuration.
//! The CUDA variant routes the lookup through extra "Thrust" wrapper
//! layers, multiplying the number of (optimistic) queries.

use crate::toolkit::*;
use oraql::compile::Scope;
use oraql::TestCase;
use oraql_ir::builder::FunctionBuilder;
use oraql_ir::module::{FunctionId, Module};
use oraql_ir::value::Value;
use oraql_ir::Ty;

/// Lookups performed.
const LOOKUPS: i64 = 24;
/// Energy-grid points.
const GRID: i64 = 48;

fn xs_arrays() -> Vec<(&'static str, u64)> {
    vec![
        ("egrid", 8 * GRID as u64),
        ("xs_a", 8 * GRID as u64),
        ("xs_b", 8 * GRID as u64),
        ("results", 8 * LOOKUPS as u64),
        ("dist", 8 * 12),
    ]
}

/// `dist[12]` alias views: one read view and one write view per element
/// 1..=11 — the eleven pessimistic pairs.
fn dist_views() -> Vec<(String, String, i64)> {
    let mut v = Vec::new();
    for i in 1..12i64 {
        v.push((format!("dist_r{i}"), "dist".to_owned(), 8 * i));
        v.push((format!("dist_w{i}"), "dist".to_owned(), 8 * i));
    }
    v
}

fn make_xs_ctx(m: &mut Module) -> Ctx {
    let views = dist_views();
    let refs: Vec<(&str, &str, i64)> = views
        .iter()
        .map(|(a, b, o)| (a.as_str(), b.as_str(), *o))
        .collect();
    make_ctx(m, "xs", &xs_arrays(), &refs)
}

/// `pick_mat`: renormalizes the running material distribution. Each of
/// the eleven steps reads `dist[i]` through one view and writes it
/// through another — a genuine alias the conservative chain cannot see.
fn emit_pick_mat(m: &mut Module, ctx: &Ctx) -> FunctionId {
    let mut b = FunctionBuilder::new(m, "pick_mat", vec![Ty::Ptr], None);
    b.set_src_file("Simulation");
    let cp = b.arg(0);
    let acc = dptr(&mut b, ctx, cp, "results");
    for i in 1..12i64 {
        b.set_loc("Simulation", 300 + i as u32, 9);
        let r = format!("dist_r{i}");
        let w = format!("dist_w{i}");
        hazard_sandwich(&mut b, ctx, cp, &r, &w, 0, acc);
    }
    b.ret(None);
    b.finish()
}

/// `calculate_xs`: interpolates two cross-section tables at an energy
/// point, entirely through dptr indirection.
fn emit_calculate_xs(m: &mut Module, ctx: &Ctx, name: &str) -> FunctionId {
    let mut b = FunctionBuilder::new(m, name, vec![Ty::Ptr, Ty::I64], None);
    b.set_src_file("Simulation");
    b.set_loc("Simulation", 120, 5);
    let cp = b.arg(0);
    let lookup = b.arg(1);
    let tag = ctx.tag_data;
    // idx = (lookup * 17) % GRID — the pseudo-random grid point.
    let h = b.mul(lookup, Value::ConstInt(17));
    let idx = b.rem(h, Value::ConstInt(GRID));
    let eg = dptr(&mut b, ctx, cp, "egrid");
    let xa = dptr(&mut b, ctx, cp, "xs_a");
    let xb = dptr(&mut b, ctx, cp, "xs_b");
    let res = dptr(&mut b, ctx, cp, "results");
    let egp = b.gep_scaled(eg, idx, 8, 0);
    let e = b.load_tbaa(Ty::F64, egp, tag);
    let xap = b.gep_scaled(xa, idx, 8, 0);
    let a = b.load_tbaa(Ty::F64, xap, tag);
    let xbp = b.gep_scaled(xb, idx, 8, 0);
    let bb = b.load_tbaa(Ty::F64, xbp, tag);
    let w = b.fmul(a, e);
    let v = b.fadd(w, bb);
    let rp = b.gep_scaled(res, lookup, 8, 0);
    let cur = b.load_tbaa(Ty::F64, rp, tag);
    let s = b.fadd(cur, v);
    b.store_tbaa(Ty::F64, s, rp, tag);
    b.ret(None);
    b.finish()
}

fn emit_setup(b: &mut FunctionBuilder<'_>, ctx: &Ctx) {
    fill_array(b, ctx, "egrid", GRID, 0.01, 0.02);
    fill_array(b, ctx, "xs_a", GRID, 2.0, 0.1);
    fill_array(b, ctx, "xs_b", GRID, 0.5, -0.01);
    fill_array(b, ctx, "results", LOOKUPS, 0.0, 0.0);
    fill_array(b, ctx, "dist", 12, 0.05, 0.01);
}

fn emit_epilogue(b: &mut FunctionBuilder<'_>, ctx: &Ctx) {
    checksum(b, ctx, "results", LOOKUPS, "verification");
    checksum(b, ctx, "dist", 12, "dist");
    timing_epilogue(b, "lookups/s");
}

/// Sequential C configuration.
pub fn build_c() -> Module {
    let mut m = Module::new("xsbench-c");
    let ctx = make_xs_ctx(&mut m);
    let pick = emit_pick_mat(&mut m, &ctx);
    let calc = emit_calculate_xs(&mut m, &ctx, "calculate_macro_xs");
    let mut b = main_builder(&mut m, "Main");
    init_ctx(&mut b, &ctx);
    emit_setup(&mut b, &ctx);
    call_kernel(&mut b, pick, &ctx);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(LOOKUPS), |b, i| {
        b.call(calc, vec![Value::Global(ctx.global), i], None);
    });
    emit_epilogue(&mut b, &ctx);
    b.ret(None);
    b.finish();
    m
}

/// OpenMP configuration: lookups distributed over an outlined region.
pub fn build_omp() -> Module {
    let mut m = Module::new("xsbench-omp");
    let ctx = make_xs_ctx(&mut m);
    let pick = emit_pick_mat(&mut m, &ctx);
    let calc = emit_calculate_xs(&mut m, &ctx, "calculate_macro_xs");
    let threads = 4u32;
    let outlined = {
        let mut b = outlined_worker(&mut m, ".omp_outlined.", "Simulation");
        let tid = b.arg(0);
        let cp = b.arg(1);
        let (lo, hi) = chunk_bounds(&mut b, tid, LOOKUPS, threads as i64);
        b.counted_loop(lo, hi, |b, i| {
            b.call(calc, vec![cp, i], None);
        });
        b.ret(None);
        b.finish()
    };
    let mut b = main_builder(&mut m, "Main");
    init_ctx(&mut b, &ctx);
    emit_setup(&mut b, &ctx);
    call_kernel(&mut b, pick, &ctx);
    b.parallel_region(outlined, vec![Value::Global(ctx.global)], threads);
    emit_epilogue(&mut b, &ctx);
    b.ret(None);
    b.finish();
    m
}

/// CUDA/Thrust configuration: the lookup goes through layered wrappers
/// (the Thrust indirection) into a device kernel; `pick_mat` stays on
/// the host, so the same eleven pessimistic queries appear.
pub fn build_cuda() -> Module {
    let mut m = Module::new("xsbench-cuda");
    let ctx = make_xs_ctx(&mut m);
    let pick = emit_pick_mat(&mut m, &ctx);
    // Device-side lookup body.
    let dev_calc = {
        let mut b = device_kernel(&mut m, "xs_lookup_kernel", "Simulation");
        let gid = b.arg(0);
        let cp = b.arg(1);
        let tag = ctx.tag_data;
        let h = b.mul(gid, Value::ConstInt(17));
        let idx = b.rem(h, Value::ConstInt(GRID));
        // Thrust-style iterator indirection: each "iterator" re-derives
        // its pointer through a chain of geps and reloads.
        for _layer in 0..3i64 {
            let eg = dptr(&mut b, &ctx, cp, "egrid");
            let xa = dptr(&mut b, &ctx, cp, "xs_a");
            let res = dptr(&mut b, &ctx, cp, "results");
            let egp = b.gep_scaled(eg, idx, 8, 0);
            let e = b.load_tbaa(Ty::F64, egp, tag);
            let xap = b.gep_scaled(xa, idx, 8, 0);
            let a = b.load_tbaa(Ty::F64, xap, tag);
            let v = b.fmul(a, e);
            let scale = b.fmul(v, Value::const_f64(1.0 / 3.0));
            let rp = b.gep_scaled(res, gid, 8, 0);
            let cur = b.load_tbaa(Ty::F64, rp, tag);
            let s = b.fadd(cur, scale);
            b.store_tbaa(Ty::F64, s, rp, tag);
        }
        b.ret(None);
        b.finish()
    };
    // Host-side Thrust wrappers (transform -> for_each -> launch).
    let launch = {
        let mut b = FunctionBuilder::new(&mut m, "thrust_transform", vec![Ty::Ptr], None);
        b.set_src_file("Simulation");
        let cp = b.arg(0);
        // The wrapper itself shuffles pointers through a local "tuple".
        let tuple = b.alloca(16, "thrust_tuple");
        let eg = dptr(&mut b, &ctx, cp, "egrid");
        b.store(Ty::Ptr, eg, tuple);
        let t2 = b.gep(tuple, 8);
        let res = dptr(&mut b, &ctx, cp, "results");
        b.store(Ty::Ptr, res, t2);
        let _reload = b.load(Ty::Ptr, tuple);
        b.kernel_launch(dev_calc, vec![cp], LOOKUPS as u32);
        b.ret(None);
        b.finish()
    };
    let mut b = main_builder(&mut m, "Main");
    init_ctx(&mut b, &ctx);
    emit_setup(&mut b, &ctx);
    call_kernel(&mut b, pick, &ctx);
    call_kernel(&mut b, launch, &ctx);
    emit_epilogue(&mut b, &ctx);
    b.ret(None);
    b.finish();
    m
}

/// The three XSBench test cases.
pub fn cases() -> Vec<TestCase> {
    let mut c = TestCase::new("xsbench", build_c);
    c.scope = Scope::files(vec!["Simulation".into()]);
    c.ignore_patterns = standard_ignore_patterns();

    let mut omp = TestCase::new("xsbench_omp", build_omp);
    omp.scope = Scope::files(vec!["Simulation".into()]);
    omp.ignore_patterns = standard_ignore_patterns();

    let mut cuda = TestCase::new("xsbench_cuda", build_cuda);
    cuda.scope = Scope::files(vec!["Simulation".into()]);
    cuda.ignore_patterns = standard_ignore_patterns();

    vec![c, omp, cuda]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_vm::Interpreter;

    #[test]
    fn all_variants_run() {
        for (name, build) in [
            ("c", build_c as fn() -> Module),
            ("omp", build_omp),
            ("cuda", build_cuda),
        ] {
            let m = build();
            oraql_ir::verify::assert_valid(&m);
            let out = Interpreter::run_main(&m).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                out.stdout.contains("checksum(verification)="),
                "{name}: {}",
                out.stdout
            );
        }
    }

    #[test]
    fn seq_and_omp_compute_same_verification() {
        let grab = |m: &Module| {
            let out = Interpreter::run_main(m).unwrap();
            out.stdout
                .lines()
                .find(|l| l.starts_with("checksum(verification)"))
                .unwrap()
                .to_owned()
        };
        // The OpenMP decomposition must not change the result.
        assert_eq!(grab(&build_c()), grab(&build_omp()));
    }

    #[test]
    fn cuda_uses_the_device() {
        let m = build_cuda();
        let out = Interpreter::run_main(&m).unwrap();
        assert!(out.stats.device_insts > 0);
    }
}
