/root/repo/target/debug/deps/extra-fc2c852036ab32a3.d: crates/analysis/tests/extra.rs Cargo.toml

/root/repo/target/debug/deps/libextra-fc2c852036ab32a3.rmeta: crates/analysis/tests/extra.rs Cargo.toml

crates/analysis/tests/extra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
