//! Multi-target compilation (paper §IV-E): a single source compiled for
//! host *and* device, with ORAQL restricted to one target via the
//! `-opt-aa-target=<substring>` analogue.
//!
//! Demonstrates:
//! 1. probing the device compilation only (the paper's TestSNAP-Kokkos
//!    and GridMini setups) — host code is untouched,
//! 2. probing both targets with one shared sequence — the "pessimistic
//!    intersection" the paper describes when the sequence cannot be
//!    adjusted between the per-target compilations of the same file.
//!
//! ```text
//! cargo run --release --example offload_multi_target
//! ```

use oraql_suite::ir::builder::FunctionBuilder;
use oraql_suite::ir::{Module, Target, Ty, Value};
use oraql_suite::oraql::compile::Scope;
use oraql_suite::oraql::{Driver, DriverOptions, TestCase};

const N: i64 = 32;

/// One "source file" with a host loop and a device kernel, both full of
/// opaque (but disjoint) pointer indirection, plus one genuine alias on
/// the host side only.
fn build() -> Module {
    let mut m = Module::new("offload");
    let g = m.add_global("bufs", 8 * (3 * N as u64), vec![], false);
    let ctx = m.add_global("ctx", 24, vec![], false);

    // Device kernel: out[gid] = a[gid] * 2 through ctx indirection.
    let kern = {
        let mut b = FunctionBuilder::new(&mut m, "offload_kernel", vec![Ty::I64, Ty::Ptr], None);
        b.set_target(Target::Device);
        b.set_src_file("offload.cpp");
        let gid = b.arg(0);
        let cp = b.arg(1);
        let ap = b.load(Ty::Ptr, cp);
        let op_slot = b.gep(cp, 8);
        let op = b.load(Ty::Ptr, op_slot);
        let ai = b.gep_scaled(ap, gid, 8, 0);
        let av = b.load(Ty::F64, ai);
        let dv = b.fmul(av, Value::const_f64(2.0));
        let oi = b.gep_scaled(op, gid, 8, 0);
        b.store(Ty::F64, dv, oi);
        b.ret(None);
        b.finish()
    };

    // Host kernel with a genuine alias (two ctx slots, same buffer).
    let host_work = {
        let mut b = FunctionBuilder::new(&mut m, "host_reduce", vec![Ty::Ptr], None);
        b.set_src_file("offload.cpp");
        let cp = b.arg(0);
        let p = b.load(Ty::Ptr, cp);
        let q_slot = b.gep(cp, 16);
        let q = b.load(Ty::Ptr, q_slot); // same buffer as p!
        let x1 = b.load(Ty::F64, p);
        let bump = b.fadd(x1, Value::const_f64(1.0));
        b.store(Ty::F64, bump, q);
        let x2 = b.load(Ty::F64, p);
        let s = b.fadd(x1, x2);
        b.print("host sum: {}", vec![s]);
        b.ret(None);
        b.finish()
    };

    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    b.set_src_file("offload.cpp");
    let a = b.gep(Value::Global(g), 0);
    let out = b.gep(Value::Global(g), 8 * N);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(N), |b, i| {
        let fi = b.si_to_fp(i);
        let ai = b.gep_scaled(a, i, 8, 0);
        b.store(Ty::F64, fi, ai);
    });
    b.store(Ty::Ptr, a, Value::Global(ctx));
    let slot1 = b.gep(Value::Global(ctx), 8);
    b.store(Ty::Ptr, out, slot1);
    let slot2 = b.gep(Value::Global(ctx), 16);
    b.store(Ty::Ptr, a, slot2); // the host-side alias: slot2 == slot0
    b.kernel_launch(kern, vec![Value::Global(ctx)], N as u32);
    b.call(host_work, vec![Value::Global(ctx)], None);
    let o5 = b.gep(out, 40);
    let v = b.load(Ty::F64, o5);
    b.print("device out[5]: {}", vec![v]);
    b.ret(None);
    b.finish();
    m
}

fn main() {
    // Run 1: device only (-opt-aa-target=device). The device kernel has
    // no true aliases, so the device compilation is fully optimistic —
    // and the host hazard never even reaches ORAQL.
    let mut dev_case = TestCase::new("offload-device", build);
    dev_case.scope = Scope::target("device");
    let dev = Driver::run(&dev_case, DriverOptions::default()).expect("device");
    println!(
        "device-only probing:  fully_optimistic={} opt={} pess={} out_of_scope={}",
        dev.fully_optimistic,
        dev.oraql.unique_optimistic,
        dev.oraql.unique_pessimistic,
        dev.oraql.out_of_scope
    );
    assert!(dev.fully_optimistic);
    assert!(dev.oraql.out_of_scope > 0, "host queries must be skipped");

    // Run 2: both targets with one shared sequence (no scope): the
    // paper's pessimistic intersection — the single sequence must
    // account for the host hazard, and it does.
    let both_case = TestCase::new("offload-both", build);
    let both = Driver::run(&both_case, DriverOptions::default()).expect("both");
    println!(
        "shared-sequence run:  fully_optimistic={} opt={} pess={}",
        both.fully_optimistic, both.oraql.unique_optimistic, both.oraql.unique_pessimistic
    );
    assert!(!both.fully_optimistic);
    assert!(both.oraql.unique_pessimistic >= 1);
    // The device queries are still answered optimistically within the
    // shared sequence.
    assert!(both.oraql.unique_optimistic > both.oraql.unique_pessimistic);

    println!("offload_multi_target OK");
}
