/root/repo/target/release/examples/decode_cost-08fcc176e19e9e48.d: crates/bench/examples/decode_cost.rs

/root/repo/target/release/examples/decode_cost-08fcc176e19e9e48: crates/bench/examples/decode_cost.rs

crates/bench/examples/decode_cost.rs:
