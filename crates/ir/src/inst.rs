//! The instruction set.
//!
//! Instructions live in a per-function arena and are referenced by
//! [`InstId`]. Basic blocks hold an ordered list of instruction ids; a
//! removed instruction stays in the arena (so ids remain stable) but is
//! dropped from its block's list and its data replaced by `Inst::Removed`.

use crate::interner::StrId;
use crate::meta::{AccessMeta, SrcLoc};
use crate::module::FunctionId;
use crate::types::Ty;
use crate::value::{BlockId, Value};

/// Handle to an instruction within a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// Integer/float binary operators. Operators apply lane-wise to vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division; division by zero traps deterministically.
    Div,
    /// Signed remainder.
    Rem,
    And,
    Or,
    Xor,
    Shl,
    /// Arithmetic shift right.
    Shr,
    FAdd,
    FSub,
    FMul,
    FDiv,
    /// Floating minimum (propagates the first operand on NaN ties).
    FMin,
    /// Floating maximum.
    FMax,
}

impl BinOp {
    /// True for the floating-point operators.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FMin | BinOp::FMax
        )
    }

    /// True for commutative operators (used by value numbering to
    /// canonicalize operand order).
    pub fn commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
                | BinOp::FMin
                | BinOp::FMax
        )
    }
}

/// Comparison predicates (integer and float variants share one enum; the
/// operand type disambiguates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    Eq,
    Ne,
    /// Signed less-than.
    Lt,
    Le,
    Gt,
    Ge,
}

/// Value casts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Signed int -> float.
    SiToFp,
    /// Float -> signed int (truncating).
    FpToSi,
    /// Integer truncation to the target width.
    Trunc,
    /// Zero/sign-preserving extension to i64 semantics (values are stored
    /// widened in registers; this is a no-op marker kept for fidelity).
    Ext,
    /// Pointer -> i64.
    PtrToInt,
    /// i64 -> pointer.
    IntToPtr,
    /// F32 <-> F64 conversion.
    FpCast,
    /// Broadcast a scalar into every lane of the result vector type.
    Splat,
}

/// Address computation performed by a [`Inst::Gep`].
///
/// Pointers are opaque; a GEP adds a byte offset that is either constant
/// or a scaled dynamic index (`base + index * scale + add`). This is rich
/// enough for `BasicAA`-style disjointness reasoning on constant parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GepOffset {
    /// Constant byte offset.
    Const(i64),
    /// `index * scale + add` bytes, with a dynamic `index`.
    Scaled {
        /// Dynamic index value (i64).
        index: Value,
        /// Byte scale (element size).
        scale: i64,
        /// Constant byte addend (e.g. a struct field offset).
        add: i64,
    },
}

/// Callee of a [`Inst::Call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuncRef {
    /// A function in the same module.
    Internal(FunctionId),
    /// An external routine handled by the VM (`sqrt`, `exp`, ...).
    External(StrId),
}

/// How a call executes. Parallel programming models are modelled
/// structurally: an outlined parallel region or device kernel is a
/// function whose first argument is the thread/work-item id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// Ordinary direct call.
    Plain,
    /// OpenMP-style parallel region: the VM invokes the callee once per
    /// thread id `0..threads`, deterministically in order, passing the id
    /// as an implicit leading `i64` argument.
    ParallelRegion {
        /// Number of simulated threads.
        threads: u32,
    },
    /// Device kernel launch: like a parallel region but the callee must
    /// live in a [`crate::Target::Device`] function, invoked once per
    /// work-item id `0..items`.
    KernelLaunch {
        /// Number of simulated work items.
        items: u32,
    },
}

/// The instruction payload. See module docs for conventions.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Stack allocation of `size` bytes; yields a pointer.
    Alloca {
        /// Allocation size in bytes.
        size: u64,
        /// Debug name of the allocated object.
        name: StrId,
    },
    /// Load `ty` from `ptr`.
    Load {
        ptr: Value,
        ty: Ty,
        meta: AccessMeta,
    },
    /// Store `value` (of type `ty`) to `ptr`.
    Store {
        ptr: Value,
        value: Value,
        ty: Ty,
        meta: AccessMeta,
    },
    /// Pointer arithmetic; yields a pointer.
    Gep { base: Value, offset: GepOffset },
    /// Binary arithmetic; operands and result share `ty`.
    Bin {
        op: BinOp,
        ty: Ty,
        lhs: Value,
        rhs: Value,
    },
    /// Comparison; yields `I1`. `ty` is the operand type.
    Cmp {
        pred: CmpPred,
        ty: Ty,
        lhs: Value,
        rhs: Value,
    },
    /// `cond ? t : f`; `ty` is the result type.
    Select {
        cond: Value,
        t: Value,
        f: Value,
        ty: Ty,
    },
    /// Value cast; `to` is the result type.
    Cast { kind: CastKind, val: Value, to: Ty },
    /// Call; `ret` is the result type if the callee returns a value.
    Call {
        callee: FuncRef,
        args: Vec<Value>,
        ret: Option<Ty>,
        kind: CallKind,
    },
    /// Return from the function.
    Ret { val: Option<Value> },
    /// Unconditional branch.
    Br { target: BlockId },
    /// Conditional branch on an `I1`.
    CondBr {
        cond: Value,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// SSA phi; `incoming` pairs a predecessor block with the value
    /// flowing in along that edge. `ty` is the result type.
    Phi {
        ty: Ty,
        incoming: Vec<(BlockId, Value)>,
    },
    /// Deterministic formatted output (the verification channel). `fmt`
    /// contains `{}` placeholders consumed left-to-right by `args`.
    Print { fmt: StrId, args: Vec<Value> },
    /// `memcpy(dst, src, bytes)`; byte count may be dynamic.
    Memcpy {
        dst: Value,
        src: Value,
        bytes: Value,
        meta: AccessMeta,
    },
    /// Placeholder left behind by passes that delete instructions.
    Removed,
}

impl Inst {
    /// Result type of the instruction, `None` for void instructions.
    pub fn result_ty(&self) -> Option<Ty> {
        match self {
            Inst::Alloca { .. } | Inst::Gep { .. } => Some(Ty::Ptr),
            Inst::Load { ty, .. } => Some(*ty),
            Inst::Bin { ty, .. } => Some(*ty),
            Inst::Cmp { .. } => Some(Ty::I1),
            Inst::Select { ty, .. } => Some(*ty),
            Inst::Cast { to, .. } => Some(*to),
            Inst::Call { ret, .. } => *ret,
            Inst::Phi { ty, .. } => Some(*ty),
            Inst::Store { .. }
            | Inst::Ret { .. }
            | Inst::Br { .. }
            | Inst::CondBr { .. }
            | Inst::Print { .. }
            | Inst::Memcpy { .. }
            | Inst::Removed => None,
        }
    }

    /// True for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Ret { .. } | Inst::Br { .. } | Inst::CondBr { .. }
        )
    }

    /// True for instructions that read or write memory (or perform I/O),
    /// i.e. instructions that must not be removed as trivially dead and
    /// that memory-dependence analyses care about.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. }
                | Inst::Call { .. }
                | Inst::Print { .. }
                | Inst::Memcpy { .. }
                | Inst::Ret { .. }
                | Inst::Br { .. }
                | Inst::CondBr { .. }
        )
    }

    /// True when the instruction may read memory.
    pub fn reads_memory(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Call { .. } | Inst::Memcpy { .. }
        )
    }

    /// True when the instruction may write memory.
    pub fn writes_memory(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. } | Inst::Call { .. } | Inst::Memcpy { .. }
        )
    }

    /// Invokes `f` on every value operand, in a stable order.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            Inst::Alloca { .. } | Inst::Removed | Inst::Br { .. } => {}
            Inst::Load { ptr, .. } => f(*ptr),
            Inst::Store { ptr, value, .. } => {
                f(*ptr);
                f(*value);
            }
            Inst::Gep { base, offset } => {
                f(*base);
                if let GepOffset::Scaled { index, .. } = offset {
                    f(*index);
                }
            }
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Select { cond, t, f: fv, .. } => {
                f(*cond);
                f(*t);
                f(*fv);
            }
            Inst::Cast { val, .. } => f(*val),
            Inst::Call { args, .. } => args.iter().copied().for_each(f),
            Inst::Ret { val } => {
                if let Some(v) = val {
                    f(*v)
                }
            }
            Inst::CondBr { cond, .. } => f(*cond),
            Inst::Phi { incoming, .. } => incoming.iter().for_each(|(_, v)| f(*v)),
            Inst::Print { args, .. } => args.iter().copied().for_each(f),
            Inst::Memcpy {
                dst, src, bytes, ..
            } => {
                f(*dst);
                f(*src);
                f(*bytes);
            }
        }
    }

    /// Invokes `f` on a mutable reference to every value operand; used by
    /// replace-all-uses-with.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match self {
            Inst::Alloca { .. } | Inst::Removed | Inst::Br { .. } => {}
            Inst::Load { ptr, .. } => f(ptr),
            Inst::Store { ptr, value, .. } => {
                f(ptr);
                f(value);
            }
            Inst::Gep { base, offset } => {
                f(base);
                if let GepOffset::Scaled { index, .. } = offset {
                    f(index);
                }
            }
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Select { cond, t, f: fv, .. } => {
                f(cond);
                f(t);
                f(fv);
            }
            Inst::Cast { val, .. } => f(val),
            Inst::Call { args, .. } => args.iter_mut().for_each(f),
            Inst::Ret { val } => {
                if let Some(v) = val {
                    f(v)
                }
            }
            Inst::CondBr { cond, .. } => f(cond),
            Inst::Phi { incoming, .. } => incoming.iter_mut().for_each(|(_, v)| f(v)),
            Inst::Print { args, .. } => args.iter_mut().for_each(f),
            Inst::Memcpy {
                dst, src, bytes, ..
            } => {
                f(dst);
                f(src);
                f(bytes);
            }
        }
    }

    /// Collects the operands into a vector (convenience for tests and
    /// hashing in value numbering).
    pub fn operands(&self) -> Vec<Value> {
        let mut v = Vec::new();
        self.for_each_operand(|x| v.push(x));
        v
    }
}

/// An instruction together with its metadata as stored in the function
/// arena.
#[derive(Debug, Clone, PartialEq)]
pub struct InstData {
    /// The payload.
    pub inst: Inst,
    /// Block this instruction currently belongs to (kept in sync by the
    /// builder and passes).
    pub block: BlockId,
    /// Optional source location for reports.
    pub loc: Option<SrcLoc>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_types() {
        let l = Inst::Load {
            ptr: Value::Arg(0),
            ty: Ty::F64,
            meta: AccessMeta::default(),
        };
        assert_eq!(l.result_ty(), Some(Ty::F64));
        let s = Inst::Store {
            ptr: Value::Arg(0),
            value: Value::ConstInt(1),
            ty: Ty::I64,
            meta: AccessMeta::default(),
        };
        assert_eq!(s.result_ty(), None);
        assert!(s.writes_memory());
        assert!(!s.reads_memory());
        assert!(l.reads_memory());
    }

    #[test]
    fn operand_iteration_order_is_stable() {
        let i = Inst::Memcpy {
            dst: Value::Arg(0),
            src: Value::Arg(1),
            bytes: Value::ConstInt(16),
            meta: AccessMeta::default(),
        };
        assert_eq!(
            i.operands(),
            vec![Value::Arg(0), Value::Arg(1), Value::ConstInt(16)]
        );
    }

    #[test]
    fn operand_mutation() {
        let mut i = Inst::Bin {
            op: BinOp::Add,
            ty: Ty::I64,
            lhs: Value::Arg(0),
            rhs: Value::Arg(1),
        };
        i.for_each_operand_mut(|v| {
            if *v == Value::Arg(0) {
                *v = Value::ConstInt(5)
            }
        });
        assert_eq!(i.operands(), vec![Value::ConstInt(5), Value::Arg(1)]);
    }

    #[test]
    fn gep_scaled_operands() {
        let g = Inst::Gep {
            base: Value::Arg(0),
            offset: GepOffset::Scaled {
                index: Value::Arg(1),
                scale: 8,
                add: 16,
            },
        };
        assert_eq!(g.operands(), vec![Value::Arg(0), Value::Arg(1)]);
        assert_eq!(g.result_ty(), Some(Ty::Ptr));
    }

    #[test]
    fn commutativity() {
        assert!(BinOp::Add.commutative());
        assert!(!BinOp::Sub.commutative());
        assert!(BinOp::FMul.commutative());
        assert!(!BinOp::Div.commutative());
    }

    #[test]
    fn terminators() {
        assert!(Inst::Ret { val: None }.is_terminator());
        assert!(Inst::Br { target: BlockId(0) }.is_terminator());
        assert!(!Inst::Removed.is_terminator());
    }
}
