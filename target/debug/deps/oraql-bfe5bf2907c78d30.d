/root/repo/target/debug/deps/oraql-bfe5bf2907c78d30.d: crates/workloads/src/bin/oraql.rs Cargo.toml

/root/repo/target/debug/deps/liboraql-bfe5bf2907c78d30.rmeta: crates/workloads/src/bin/oraql.rs Cargo.toml

crates/workloads/src/bin/oraql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
